#include "itb/fault/injector.hpp"

#include <string>

namespace itb::fault {

FaultInjector::FaultInjector(sim::EventQueue& queue, sim::Tracer& tracer,
                             net::Network& network, FaultPlan plan,
                             const FaultSchedule& schedule)
    : queue_(queue),
      tracer_(tracer),
      network_(network),
      topo_(network.topology()),
      plan_(plan),
      rng_(plan.seed),
      effective_down_(topo_.link_count(), 0),
      link_down_(topo_.link_count(), 0),
      switch_down_(topo_.switch_count(), 0),
      host_down_(topo_.host_count(), 0),
      nic_stall_(topo_.host_count(), 0) {
  for (const FaultWindow& w : schedule.windows()) {
    switch (w.kind) {
      case FaultKind::kLinkDown:
        if (w.target >= topo_.link_count())
          throw std::invalid_argument("fault window names a bad link");
        break;
      case FaultKind::kSwitchDown:
        if (w.target >= topo_.switch_count())
          throw std::invalid_argument("fault window names a bad switch");
        break;
      case FaultKind::kHostDown:
      case FaultKind::kNicStall:
        if (w.target >= topo_.host_count())
          throw std::invalid_argument("fault window names a bad host");
        break;
    }
    queue_.schedule_at(w.start, [this, w] { open_window(w); });
    queue_.schedule_at(w.end, [this, w] { close_window(w); });
  }
  network_.set_fault_hook(this);
}

FaultInjector::~FaultInjector() { network_.set_fault_hook(nullptr); }

net::FaultHook::Fate FaultInjector::delivery_fate(std::uint16_t /*host*/,
                                                  packet::Bytes& bytes) {
  // Exactly the draw order of the old in-network FaultPlan code, so seeded
  // loss sweeps keep their historical results.
  if (plan_.drop_probability > 0 && rng_.next_bool(plan_.drop_probability)) {
    ++stats_.lost_drop;
    return Fate::kDrop;
  }
  if (plan_.corrupt_probability > 0 && rng_.next_bool(plan_.corrupt_probability) &&
      bytes.size() > 3) {
    const auto victim = 3 + rng_.next_below(bytes.size() - 3);
    bytes[victim] ^= 0x40;
    ++stats_.corrupted;
    return Fate::kCorrupt;
  }
  return Fate::kDeliver;
}

void FaultInjector::note_kill(topo::Channel at) {
  // Attribute the kill to the most specific cause covering the link.
  const auto& l = topo_.link(at.link);
  for (const auto& end : {l.a, l.b}) {
    if (end.node.kind == topo::NodeKind::kHost && host_down_[end.node.index] > 0) {
      ++stats_.lost_host_down;
      return;
    }
  }
  for (const auto& end : {l.a, l.b}) {
    if (end.node.kind == topo::NodeKind::kSwitch &&
        switch_down_[end.node.index] > 0) {
      ++stats_.lost_switch_down;
      return;
    }
  }
  ++stats_.lost_link_down;
}

std::vector<topo::LinkId> FaultInjector::links_of_target(
    const FaultWindow& w) const {
  switch (w.kind) {
    case FaultKind::kLinkDown:
      return {static_cast<topo::LinkId>(w.target)};
    case FaultKind::kSwitchDown:
      return topo_.links_of(topo::switch_id(static_cast<std::uint16_t>(w.target)));
    case FaultKind::kHostDown:
      return topo_.links_of(topo::host_id(static_cast<std::uint16_t>(w.target)));
    case FaultKind::kNicStall:
      return {};
  }
  return {};
}

void FaultInjector::open_window(const FaultWindow& w) {
  ++stats_.windows_opened;
  ++active_windows_;
  tracer_.emit(queue_.now(), sim::TraceCategory::kFault, [&] {
    return std::string("window open: ") + to_string(w.kind) + " target " +
           std::to_string(w.target);
  });
  switch (w.kind) {
    case FaultKind::kLinkDown:
      ++link_down_[w.target];
      break;
    case FaultKind::kSwitchDown:
      ++switch_down_[w.target];
      break;
    case FaultKind::kHostDown:
      ++host_down_[w.target];
      break;
    case FaultKind::kNicStall:
      ++nic_stall_[w.target];
      break;
  }
  // Impair covered links only after the down counters are set so kills
  // occurring during the transition attribute to the right cause.
  for (auto link : links_of_target(w)) down_link(link);
  announce(w, /*opened=*/true);
}

void FaultInjector::close_window(const FaultWindow& w) {
  ++stats_.windows_closed;
  --active_windows_;
  tracer_.emit(queue_.now(), sim::TraceCategory::kFault, [&] {
    return std::string("window close: ") + to_string(w.kind) + " target " +
           std::to_string(w.target);
  });
  switch (w.kind) {
    case FaultKind::kLinkDown:
      --link_down_[w.target];
      break;
    case FaultKind::kSwitchDown:
      --switch_down_[w.target];
      break;
    case FaultKind::kHostDown:
      --host_down_[w.target];
      break;
    case FaultKind::kNicStall:
      --nic_stall_[w.target];
      if (nic_stall_[w.target] == 0)
        network_.rearbitrate_host(static_cast<std::uint16_t>(w.target));
      break;
  }
  for (auto link : links_of_target(w)) up_link(link);
  announce(w, /*opened=*/false);
}

void FaultInjector::down_link(topo::LinkId link) {
  if (effective_down_[link]++ == 0) network_.on_link_state(link, false);
}

void FaultInjector::up_link(topo::LinkId link) {
  if (--effective_down_[link] == 0) network_.on_link_state(link, true);
}

void FaultInjector::announce(const FaultWindow& w, bool opened) {
  if (w.kind == FaultKind::kNicStall) return;
  for (const auto& fn : listeners_) fn(queue_.now(), w, opened);
}

void FaultInjector::register_metrics(telemetry::MetricRegistry& registry) const {
  auto counter = [&registry](const char* name, const std::uint64_t& field) {
    registry.register_source("fault", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); });
  };
  counter("windows_opened", stats_.windows_opened);
  counter("windows_closed", stats_.windows_closed);
  counter("lost_drop", stats_.lost_drop);
  counter("corrupted", stats_.corrupted);
  counter("lost_link_down", stats_.lost_link_down);
  counter("lost_switch_down", stats_.lost_switch_down);
  counter("lost_host_down", stats_.lost_host_down);
  registry.register_source(
      "fault", "active_windows", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(active_windows_); });
}

}  // namespace itb::fault
