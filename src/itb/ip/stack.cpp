#include "itb/ip/stack.hpp"

#include <algorithm>
#include <stdexcept>

namespace itb::ip {

IpStack::IpStack(sim::EventQueue& queue, nic::Nic& nic, nic::NicMux& mux,
                 const IpConfig& config)
    : queue_(queue), nic_(nic), config_(config) {
  mux.route(packet::PacketType::kIp, this);
}

void IpStack::send(std::uint16_t dst_host, packet::Bytes payload,
                   std::uint8_t protocol) {
  if (payload.empty()) throw std::invalid_argument("empty datagram");
  const std::size_t mtu_payload = nic::Nic::kMtu - IpHeader::kSize;
  const std::uint16_t ident = next_ident_++;
  ++stats_.datagrams_sent;

  std::size_t offset = 0;
  while (offset < payload.size()) {
    const std::size_t n = std::min(mtu_payload, payload.size() - offset);
    IpHeader h;
    h.ttl = config_.ttl;
    h.protocol = protocol;
    h.ident = ident;
    h.fragment_offset = static_cast<std::uint16_t>(offset);
    h.more_fragments = offset + n < payload.size();
    h.src_addr = address_of(nic_.host());
    h.dst_addr = address_of(dst_host);
    auto frag = encode(
        h, std::span(payload).subspan(offset, n));
    nic_.post_send(dst_host, std::move(frag), packet::PacketType::kIp);
    ++stats_.fragments_sent;
    offset += n;
  }
}

void IpStack::on_message(sim::Time t, packet::PacketType type,
                         packet::Bytes payload) {
  if (type != packet::PacketType::kIp) return;
  sweep(t);
  auto d = decode(payload);
  if (!d) {
    ++stats_.header_errors;
    return;
  }
  ++stats_.fragments_received;
  const auto src = host_of(d->header.src_addr);
  if (!src) {
    ++stats_.header_errors;
    return;
  }

  const auto key = std::pair(*src, d->header.ident);
  Reassembly& r = partial_[key];
  if (r.data.empty() && r.received == 0)
    r.deadline = t + config_.reassembly_timeout;
  const std::size_t end = d->header.fragment_offset + d->payload.size();
  if (r.data.size() < end) r.data.resize(end);
  std::copy(d->payload.begin(), d->payload.end(),
            r.data.begin() + d->header.fragment_offset);
  r.received += d->payload.size();
  if (!d->header.more_fragments) r.total = end;

  if (r.total == 0 || r.received < r.total) return;
  packet::Bytes datagram = std::move(r.data);
  datagram.resize(r.total);
  const auto protocol = d->header.protocol;
  partial_.erase(key);
  ++stats_.datagrams_delivered;
  if (handler_) handler_(t, *src, protocol, std::move(datagram));
}

void IpStack::sweep(sim::Time now) {
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (it->second.deadline <= now) {
      ++stats_.reassembly_timeouts;
      it = partial_.erase(it);
    } else {
      ++it;
    }
  }
}

void IpStack::register_metrics(telemetry::MetricRegistry& registry) const {
  const telemetry::Labels labels{.host = nic_.host(), .channel = -1};
  auto source = [&registry, labels](const char* name,
                                    const std::uint64_t& field) {
    registry.register_source("ip", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); },
                             labels);
  };
  source("datagrams_sent", stats_.datagrams_sent);
  source("fragments_sent", stats_.fragments_sent);
  source("datagrams_delivered", stats_.datagrams_delivered);
  source("fragments_received", stats_.fragments_received);
  source("header_errors", stats_.header_errors);
  source("reassembly_timeouts", stats_.reassembly_timeouts);
  registry.register_source(
      "ip", "reassembly_partial", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(partial_.size()); }, labels);
}

}  // namespace itb::ip
