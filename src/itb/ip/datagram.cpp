#include "itb/ip/datagram.hpp"

namespace itb::ip {
namespace {

constexpr std::uint32_t kNetworkBase = 0x0A000000;  // 10.0.0.0

void put16(packet::Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}
void put32(packet::Bytes& b, std::uint32_t v) {
  put16(b, static_cast<std::uint16_t>(v >> 16));
  put16(b, static_cast<std::uint16_t>(v));
}
std::uint16_t get16(std::span<const std::uint8_t> b, std::size_t i) {
  return static_cast<std::uint16_t>((b[i] << 8) | b[i + 1]);
}
std::uint32_t get32(std::span<const std::uint8_t> b, std::size_t i) {
  return (static_cast<std::uint32_t>(get16(b, i)) << 16) | get16(b, i + 2);
}

}  // namespace

std::uint32_t address_of(std::uint16_t host) {
  return kNetworkBase + 1u + host;  // 10.0.x.y, skipping the network address
}

std::optional<std::uint16_t> host_of(std::uint32_t addr) {
  if (addr <= kNetworkBase || addr > kNetworkBase + 0x10000) return std::nullopt;
  return static_cast<std::uint16_t>(addr - kNetworkBase - 1);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

packet::Bytes encode(const IpHeader& header,
                     std::span<const std::uint8_t> payload) {
  packet::Bytes out;
  out.reserve(IpHeader::kSize + payload.size());
  out.push_back(header.version);
  out.push_back(header.ttl);
  out.push_back(header.protocol);
  out.push_back(header.more_fragments ? 1 : 0);
  put16(out, static_cast<std::uint16_t>(IpHeader::kSize + payload.size()));
  put16(out, header.ident);
  put16(out, header.fragment_offset);
  put32(out, header.src_addr);
  put32(out, header.dst_addr);
  put16(out, 0);  // checksum placeholder
  const auto checksum = internet_checksum(std::span(out).first(IpHeader::kSize));
  out[IpHeader::kSize - 2] = static_cast<std::uint8_t>(checksum >> 8);
  out[IpHeader::kSize - 1] = static_cast<std::uint8_t>(checksum);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Decoded> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < IpHeader::kSize) return std::nullopt;
  if (bytes[0] != 4) return std::nullopt;
  // A header with a valid checksum sums (with the stored checksum included)
  // to zero; internet_checksum then returns 0.
  if (internet_checksum(bytes.first(IpHeader::kSize)) != 0) return std::nullopt;

  Decoded d;
  d.header.version = bytes[0];
  d.header.ttl = bytes[1];
  d.header.protocol = bytes[2];
  d.header.more_fragments = bytes[3] != 0;
  d.header.total_length = get16(bytes, 4);
  d.header.ident = get16(bytes, 6);
  d.header.fragment_offset = get16(bytes, 8);
  d.header.src_addr = get32(bytes, 10);
  d.header.dst_addr = get32(bytes, 14);
  if (d.header.total_length != bytes.size()) return std::nullopt;
  d.payload.assign(bytes.begin() + IpHeader::kSize, bytes.end());
  return d;
}

}  // namespace itb::ip
