// Best-effort IP service over a Myrinet NIC.
//
// The IP driver fragments datagrams to the NIC MTU, stamps kIp Myrinet
// packets, and reassembles on receive with a timeout — classic best-effort
// semantics: unlike GM there are no acknowledgements or retransmissions, so
// drops (buffer-pool overflow, fault injection) surface as lost datagrams
// and reassembly timeouts, exactly what TCP above it would have to handle.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "itb/ip/datagram.hpp"
#include "itb/nic/mux.hpp"
#include "itb/telemetry/metrics.hpp"

namespace itb::ip {

struct IpConfig {
  /// Reassembly give-up time for incomplete datagrams.
  sim::Duration reassembly_timeout = 5 * sim::kMs;
  std::uint8_t ttl = 64;
};

struct IpStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t fragments_sent = 0;
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t fragments_received = 0;
  std::uint64_t header_errors = 0;       // bad version/checksum/length
  std::uint64_t reassembly_timeouts = 0; // incomplete datagrams dropped
};

class IpStack final : public nic::NicClient {
 public:
  using Handler = std::function<void(sim::Time, std::uint16_t src_host,
                                     std::uint8_t protocol, packet::Bytes)>;

  /// Registers with `mux` for kIp packets.
  IpStack(sim::EventQueue& queue, nic::Nic& nic, nic::NicMux& mux,
          const IpConfig& config = {});

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Send a datagram (fragmenting as needed). Best effort: no completion
  /// signal, no retransmission.
  void send(std::uint16_t dst_host, packet::Bytes payload,
            std::uint8_t protocol = 17);

  const IpStats& stats() const { return stats_; }

  /// Publish the IpStats counters under component "ip" with this stack's
  /// host label (callback-backed).
  void register_metrics(telemetry::MetricRegistry& registry) const;

  void on_message(sim::Time t, packet::PacketType type,
                  packet::Bytes payload) override;
  void on_send_complete(sim::Time, std::uint64_t) override {}

 private:
  struct Reassembly {
    packet::Bytes data;        // grows as fragments land
    std::size_t received = 0;  // payload bytes accumulated
    std::size_t total = 0;     // 0 until the final fragment arrives
    sim::Time deadline = 0;
  };

  void sweep(sim::Time now);

  sim::EventQueue& queue_;
  nic::Nic& nic_;
  IpConfig config_;
  IpStats stats_;
  Handler handler_;
  std::uint16_t next_ident_ = 1;
  /// Keyed by (src_host, ident).
  std::map<std::pair<std::uint16_t, std::uint16_t>, Reassembly> partial_;
};

}  // namespace itb::ip
