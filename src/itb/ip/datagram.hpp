// IP datagram encoding for IP-over-Myrinet.
//
// GM carries TCP/IP traffic by wrapping IP datagrams in Myrinet packets of
// type kIp (§4 lists "a packet with an IP packet in its payload" among the
// types a NIC classifies). We implement an IPv4-style header — enough of it
// for fragmentation, reassembly and integrity — with host ids mapped onto a
// 10.0.0.0/24-style address space.
#pragma once

#include <cstdint>
#include <optional>

#include "itb/packet/format.hpp"

namespace itb::ip {

/// IPv4-like header, fixed 20 bytes (no options).
struct IpHeader {
  std::uint8_t version = 4;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 17;     // UDP-like by default
  std::uint16_t total_length = 0; // header + payload bytes in THIS fragment
  std::uint16_t ident = 0;        // shared by all fragments of a datagram
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // bytes (we do not impose /8 units)
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;

  static constexpr std::size_t kSize = 20;
};

/// Map a GM host id into the cluster's address space and back.
std::uint32_t address_of(std::uint16_t host);
std::optional<std::uint16_t> host_of(std::uint32_t addr);

/// RFC-791-style 16-bit ones'-complement checksum over `data`.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Serialize header + payload; the header checksum is computed over the
/// header bytes with the checksum field zeroed.
packet::Bytes encode(const IpHeader& header,
                     std::span<const std::uint8_t> payload);

/// Parse an encoded datagram. Returns nullopt on short input, bad version
/// or checksum mismatch.
struct Decoded {
  IpHeader header;
  packet::Bytes payload;
};
std::optional<Decoded> decode(std::span<const std::uint8_t> bytes);

}  // namespace itb::ip
