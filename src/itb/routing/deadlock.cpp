#include "itb/routing/deadlock.hpp"

#include <algorithm>
#include <stdexcept>

namespace itb::routing {

DependencyGraph::DependencyGraph(const topo::Topology& topo,
                                 unsigned lane_count)
    : lanes_(lane_count == 0 ? 1 : lane_count),
      channels_(topo.link_count() * 2 * lanes_),
      hosts_(topo.host_count()),
      out_(channels_ + hosts_) {}

void DependencyGraph::add_edge(Node from, Node to) {
  const auto f = index(from);
  const auto t = index(to);
  if (f >= out_.size() || t >= out_.size())
    throw std::out_of_range("dependency node out of range");
  if (std::find(out_[f].begin(), out_[f].end(), t) == out_[f].end())
    out_[f].push_back(t);
}

void DependencyGraph::add_dependency(topo::Channel from, topo::Channel to) {
  add_edge(Node::of_channel(from), Node::of_channel(to));
}

namespace {

/// Directed channel along a host's (single) link.
topo::Channel host_channel(const topo::Topology& topo, std::uint16_t host,
                           bool host_to_switch) {
  const auto lid = topo.link_at(topo::host_id(host), 0);
  if (!lid) throw std::logic_error("host unattached");
  const auto& l = topo.link(*lid);
  const bool host_is_a = l.a.node == topo::host_id(host);
  return topo::Channel{*lid, host_is_a == host_to_switch};
}

}  // namespace

void DependencyGraph::add_route_impl(const HostPath& path,
                                     const topo::Topology& topo,
                                     bool buffered) {
  // Split the flat trunk-channel list at segment boundaries: segment i has
  // segments[i].size() - 1 trunk hops (its final route byte exits to a
  // host: the next in-transit host or the destination).
  std::size_t trunk_cursor = 0;
  for (std::size_t seg = 0; seg < path.segments.size(); ++seg) {
    std::vector<topo::Channel> chain;
    const std::uint16_t entry_host =
        seg == 0 ? path.src_host : path.in_transit_hosts[seg - 1];
    chain.push_back(host_channel(topo, entry_host, /*host_to_switch=*/true));
    const std::size_t trunks_here = path.segments[seg].size() - 1;
    for (std::size_t i = 0; i < trunks_here; ++i)
      chain.push_back(path.trunk_channels.at(trunk_cursor++));
    const std::uint16_t exit_host = seg + 1 < path.segments.size()
                                        ? path.in_transit_hosts[seg]
                                        : path.dst_host;
    chain.push_back(host_channel(topo, exit_host, /*host_to_switch=*/false));

    for (std::size_t i = 0; i + 1 < chain.size(); ++i)
      add_dependency(chain[i], chain[i + 1]);
    if (buffered && seg > 0) {
      // The previous segment's channels are released only once this
      // segment's re-injection drains the in-transit buffer: thread the
      // chain through the buffer node instead of restarting it.
      add_edge(Node::of_buffer(entry_host), Node::of_channel(chain.front()));
    }
    if (buffered && seg + 1 < path.segments.size()) {
      // Delivery into the in-transit host consumes a finite pool buffer.
      add_edge(Node::of_channel(chain.back()), Node::of_buffer(exit_host));
    }
    // In the classical graph no edge crosses the ejection: the packet is
    // fully buffered in the in-transit NIC's SRAM, releasing every channel
    // of this chain before the next chain's channels are requested. The
    // buffered variant keeps the chain alive through the buffer node.
  }
  if (trunk_cursor != path.trunk_channels.size())
    throw std::logic_error("trunk channel count inconsistent with segments");
}

void DependencyGraph::add_route(const HostPath& path,
                                const topo::Topology& topo) {
  add_route_impl(path, topo, /*buffered=*/false);
}

void DependencyGraph::add_route_buffered(const HostPath& path,
                                         const topo::Topology& topo) {
  add_route_impl(path, topo, /*buffered=*/true);
}

void DependencyGraph::add_table(const RouteTable& table,
                                const topo::Topology& topo) {
  for (std::uint16_t s = 0; s < table.host_count(); ++s)
    for (std::uint16_t d = 0; d < table.host_count(); ++d) {
      if (s == d) continue;
      add_route(table.route(s, d), topo);
    }
}

void DependencyGraph::add_table_buffered(const RouteTable& table,
                                         const topo::Topology& topo) {
  for (std::uint16_t s = 0; s < table.host_count(); ++s)
    for (std::uint16_t d = 0; d < table.host_count(); ++d) {
      if (s == d) continue;
      add_route_buffered(table.route(s, d), topo);
    }
}

std::size_t DependencyGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& adj : out_) n += adj.size();
  return n;
}

bool DependencyGraph::has_cycle() const { return !find_cycle_nodes().empty(); }

std::vector<topo::Channel> DependencyGraph::find_cycle() const {
  std::vector<topo::Channel> cycle;
  for (const Node& n : find_cycle_nodes())
    if (!n.is_buffer) cycle.push_back(n.channel);
  return cycle;
}

bool DependencyGraph::cycle_through_buffer() const {
  const auto cycle = find_cycle_nodes();
  return std::any_of(cycle.begin(), cycle.end(),
                     [](const Node& n) { return n.is_buffer; });
}

std::string DependencyGraph::describe(const std::vector<Node>& nodes) {
  std::string s;
  for (const Node& n : nodes) {
    if (!s.empty()) s += " -> ";
    if (n.is_buffer) {
      s += "buf(h" + std::to_string(n.host) + ")";
    } else {
      s += "ch(" + std::to_string(n.channel.link) +
           (n.channel.forward ? ">" : "<");
      if (n.lane > 0) s += ",l" + std::to_string(n.lane);
      s += ")";
    }
  }
  return s;
}

std::vector<DependencyGraph::Node> DependencyGraph::find_cycle_nodes() const {
  // Iterative three-colour DFS that records the tree path for cycle
  // extraction.
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  const std::size_t n = out_.size();
  std::vector<std::uint8_t> colour(n, kWhite);
  std::vector<std::uint32_t> parent(n, UINT32_MAX);

  for (std::uint32_t root = 0; root < n; ++root) {
    if (colour[root] != kWhite) continue;
    // Stack of (node, next-edge-index).
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    stack.emplace_back(root, 0);
    colour[root] = kGrey;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      if (edge < out_[node].size()) {
        const auto next = out_[node][edge++];
        if (colour[next] == kWhite) {
          colour[next] = kGrey;
          parent[next] = node;
          stack.emplace_back(next, 0);
        } else if (colour[next] == kGrey) {
          // Found a back edge node -> next; unwind the grey path.
          std::vector<Node> cycle;
          std::uint32_t walk = node;
          cycle.push_back(node_of(next));
          while (walk != next && walk != UINT32_MAX) {
            cycle.push_back(node_of(walk));
            walk = parent[walk];
          }
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
      } else {
        colour[node] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace itb::routing
