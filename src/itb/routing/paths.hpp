// Host-to-host route computation.
//
// Three route families:
//   * up*/down* — shortest path whose switch-switch traversals form the
//     pattern up* down* (no up after a down). What stock Myrinet/GM uses.
//   * minimal  — unrestricted shortest path; may be up*/down*-invalid.
//   * ITB      — minimal path split into valid up*/down* sub-paths by
//     ejecting/re-injecting at in-transit hosts (the paper's mechanism).
//
// A HostPath carries both the structural description (switch sequence,
// in-transit hosts) and the wire encoding (route-byte segments, Fig. 3).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "itb/packet/format.hpp"
#include "itb/routing/updown.hpp"
#include "itb/topo/topology.hpp"

namespace itb::routing {

/// Which restriction a route table is computed under. Lives here (not in
/// table.hpp) so the per-source solver can take it without a header cycle.
enum class Policy : std::uint8_t {
  kUpDown,    // stock GM routing
  kItb,       // minimal routing legalised with in-transit buffers
  kVcEscape,  // minimal routing legalised with virtual-channel lanes
};

const char* to_string(Policy p);

/// A computed route between two hosts.
struct HostPath {
  std::uint16_t src_host = 0;
  std::uint16_t dst_host = 0;

  /// Route-byte segments: one per injection. segments[0] is stamped by the
  /// source NIC; segments[i>0] follow the i-th ITB tag (Fig. 3b).
  std::vector<packet::Route> segments;

  /// In-transit hosts, one per segment boundary (empty for plain routes).
  std::vector<std::uint16_t> in_transit_hosts;

  /// Switch-switch links traversed, in order (ejections do not interrupt
  /// the sequence; used for hop counting and deadlock analysis).
  std::vector<topo::Channel> trunk_channels;

  /// Total switch traversals (each ITB revisit counts; equals the sum of
  /// segment lengths).
  std::size_t switch_traversals() const;

  /// Number of switch-switch links used (the paper's path-length metric).
  std::size_t trunk_hops() const { return trunk_channels.size(); }

  std::size_t itb_count() const { return in_transit_hosts.size(); }
};

/// Which host on a switch serves as the in-transit host when several are
/// available. kLowestIndex mirrors the simplest mapper; kSpread hashes the
/// (src, dst) pair over the candidates so the forwarding load (and the NIC
/// CPU cost it carries) is distributed across the switch's hosts.
enum class ItbHostSelection : std::uint8_t { kLowestIndex, kSpread };

/// Route computation over one topology + one up*/down* orientation.
class Router {
 public:
  explicit Router(const UpDown& updown,
                  ItbHostSelection selection = ItbHostSelection::kLowestIndex);

  /// Shortest valid up*/down* route. Always exists in a connected network.
  HostPath updown_route(std::uint16_t src_host, std::uint16_t dst_host) const;

  /// Unrestricted shortest route (may be invalid under up*/down*); useful
  /// for analysis and as the skeleton for ITB routes.
  HostPath minimal_route(std::uint16_t src_host, std::uint16_t dst_host) const;

  /// Minimal route split into valid up*/down* segments with ITBs. Falls
  /// back to updown_route when no minimal path can be legalised (e.g. an
  /// ITB would be needed at a switch with no attached host anywhere on any
  /// minimal path).
  HostPath itb_route(std::uint16_t src_host, std::uint16_t dst_host) const;

  /// All routes out of one source under `policy`: ONE multi-destination
  /// search (the Dijkstra never looks at the destination until extraction)
  /// followed by a per-destination path reconstruction. Entry [dst] for
  /// dst == src or an unattached endpoint is an empty HostPath. Identical
  /// paths to calling updown_route()/itb_route() per pair, at 1/H the
  /// search cost — the primitive RouteTable parallelises over sources.
  ///
  /// `vc_lanes` only matters under Policy::kVcEscape: a minimal route is
  /// kept when its up*/down* segment count fits the lane ladder
  /// (updown_segments() <= vc_lanes); otherwise the pair falls back to the
  /// plain up*/down* route, which rides lane 0 end to end.
  std::vector<HostPath> routes_from(std::uint16_t src_host, Policy policy,
                                    unsigned vc_lanes = 2) const;

  /// Trunk-hop distance of the unrestricted shortest path.
  std::size_t minimal_distance(std::uint16_t src_host,
                               std::uint16_t dst_host) const;

  /// minimal_distance() to every destination from one unrestricted search.
  /// Entries for dst == src or unattached endpoints are 0.
  std::vector<std::size_t> minimal_distances_from(std::uint16_t src_host) const;

  /// True if the switch-link traversal sequence obeys up* down*.
  bool is_valid_updown(const std::vector<topo::Channel>& trunks) const;

  /// Number of maximal up*/down*-valid segments in the traversal sequence:
  /// 1 + the number of down->up transitions (1 for an empty or fully valid
  /// sequence). The VC-escape engine assigns segment j to lane j, so a
  /// minimal route is ladder-feasible iff updown_segments() <= lane count.
  std::size_t updown_segments(const std::vector<topo::Channel>& trunks) const;

  /// True when `host` can source/sink traffic under the orientation's link
  /// mask: attached, and its uplink usable.
  bool host_usable(std::uint16_t host) const;

  /// True when the switch has at least one usable attached host (an ITB
  /// candidate / phase-reset point).
  bool has_itb_host(std::uint16_t sw) const { return !itb_hosts_[sw].empty(); }

  /// Unrestricted BFS hop distances from one switch over the usable trunk
  /// graph (0xFFFFFFFF = unreachable). Since hops are the primary key of
  /// the lex search cost, these lower-bound every restricted route — the
  /// incremental patcher's attraction test builds on that.
  std::vector<std::uint32_t> min_hops_from_switch(std::uint16_t sw) const;

  const UpDown& updown() const { return *updown_; }
  const topo::Topology& topology() const { return updown_->topology(); }

 private:
  const UpDown* updown_;

  struct Hop {
    topo::LinkId link;
    std::uint16_t to_switch;
    std::uint8_t out_port;  // port on the *from* switch
    bool up;
  };
  /// Adjacency: for each switch, its usable outgoing trunk hops.
  std::vector<std::vector<Hop>> adj_;
  ItbHostSelection selection_;
  struct ItbCandidate {
    std::uint16_t host;
    std::uint8_t port;  // switch port leading to it
  };
  /// For each switch, its attached hosts usable as in-transit hosts,
  /// sorted by host index.
  std::vector<std::vector<ItbCandidate>> itb_hosts_;

  /// Pick the in-transit host on `sw` for the (src, dst) pair.
  const ItbCandidate& pick_itb(std::uint16_t sw, std::uint16_t src,
                               std::uint16_t dst) const;

  // ---- Per-source search machinery -------------------------------------
  // The Dijkstra over (switch, up*/down* phase) states is destination-blind:
  // it relaxes the whole fabric and only the extraction step looks at dst.
  // Splitting the two lets routes_from() pay one search for a full table
  // row where the old per-pair search() paid H of them.

  struct SearchCost {
    std::uint32_t hops = 0xFFFFFFFFu;
    std::uint32_t itbs = 0xFFFFFFFFu;
    friend auto operator<=>(const SearchCost&, const SearchCost&) = default;
  };
  struct SearchPred {
    std::uint16_t sw = 0xFFFF;
    std::uint8_t phase = 0;
    /// Index into adj_[pred.sw] of the hop taken, or -1 for an ITB reset
    /// (same switch, phase 1 -> 0).
    int hop = -2;  // -2 = unset / source
  };
  /// Full relaxation result from one source switch.
  struct Search {
    std::uint16_t src_switch = 0;
    std::vector<std::array<SearchCost, 2>> dist;  // [switch][phase]
    std::vector<std::array<SearchPred, 2>> pred;
  };

  Search relax(std::uint16_t src_switch, bool restrict_updown,
               bool allow_itb) const;
  HostPath extract(const Search& s, std::uint16_t src_host,
                   std::uint16_t dst_host) const;

  /// The ONE mapping from a policy to its primary search restriction. Every
  /// route-solve entry point derives its flags here, so a policy with no
  /// routing restriction (kVcEscape's minimal lanes) is just another row of
  /// this table — no caller special-cases it, and minimal_fraction reports
  /// 100% for it without a policy branch.
  struct SolveFlags {
    bool restrict_updown;
    bool allow_itb;
  };
  static SolveFlags solve_flags(Policy policy);

  HostPath search(std::uint16_t src_host, std::uint16_t dst_host,
                  bool restrict_updown, bool allow_itb) const;
};

/// Render a path like "h0 -> s0 -> s1 =ITB(h3)=> s1 -> s2 -> h5".
std::string describe(const HostPath& path, const topo::Topology& topo);

}  // namespace itb::routing
