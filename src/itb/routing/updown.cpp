#include "itb/routing/updown.hpp"

#include <array>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace itb::routing {

namespace {
constexpr std::uint16_t kUnoriented = 0xFFFF;
constexpr unsigned kUnreached = std::numeric_limits<unsigned>::max();
}  // namespace

UpDown::UpDown(const topo::Topology& topo, std::uint16_t root)
    : UpDown(topo, root, {}, /*allow_partial=*/false) {}

UpDown::UpDown(const topo::Topology& topo, std::uint16_t root,
               std::vector<char> link_up)
    : UpDown(topo, root, std::move(link_up), /*allow_partial=*/true) {}

UpDown::UpDown(const topo::Topology& topo, std::uint16_t root,
               std::vector<char> link_up, bool allow_partial)
    : topo_(&topo), root_(root), link_up_(std::move(link_up)) {
  const auto n = topo.switch_count();
  if (root >= n) throw std::invalid_argument("root switch out of range");
  if (!link_up_.empty() && link_up_.size() != topo.link_count())
    throw std::invalid_argument("link mask size mismatch");
  depths_.assign(n, kUnreached);
  up_end_.assign(topo.link_count(), kUnoriented);

  const auto usable = [&](topo::LinkId lid) {
    return link_up_.empty() || link_up_[lid];
  };

  // Breadth-first spanning tree over switches. Neighbours are visited in
  // link-id order, which makes the tree deterministic.
  std::queue<std::uint16_t> frontier;
  depths_[root] = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    const auto sw = frontier.front();
    frontier.pop();
    for (auto lid : topo.links_of(topo::switch_id(sw))) {
      if (!usable(lid)) continue;
      const auto& l = topo.link(lid);
      if (l.a.node.kind != topo::NodeKind::kSwitch ||
          l.b.node.kind != topo::NodeKind::kSwitch)
        continue;
      if (l.a.node == l.b.node) continue;  // self-cable
      const std::uint16_t other =
          (l.a.node.index == sw) ? l.b.node.index : l.a.node.index;
      if (depths_[other] == kUnreached) {
        depths_[other] = depths_[sw] + 1;
        frontier.push(other);
      }
    }
  }
  if (!allow_partial) {
    for (std::size_t s = 0; s < n; ++s) {
      if (depths_[s] == kUnreached)
        throw std::invalid_argument("switch graph is not connected");
    }
  }

  // Orient every switch-switch link by the two rules. Masked-down links and
  // links with an unreached end stay unoriented: unreached depths are all
  // kUnreached so the tie rule would otherwise mis-orient them, and no legal
  // route can traverse them anyway.
  for (topo::LinkId lid = 0; lid < topo.link_count(); ++lid) {
    if (!usable(lid)) continue;
    const auto& l = topo.link(lid);
    if (l.a.node.kind != topo::NodeKind::kSwitch ||
        l.b.node.kind != topo::NodeKind::kSwitch)
      continue;
    if (l.a.node == l.b.node) continue;
    const auto sa = l.a.node.index;
    const auto sb = l.b.node.index;
    if (depths_[sa] == kUnreached || depths_[sb] == kUnreached) continue;
    if (depths_[sa] != depths_[sb]) {
      up_end_[lid] = depths_[sa] < depths_[sb] ? sa : sb;
    } else {
      up_end_[lid] = std::min(sa, sb);
    }
  }
}

bool UpDown::reached(std::uint16_t sw) const {
  return depths_.at(sw) != kUnreached;
}

bool UpDown::link_usable(topo::LinkId link) const {
  if (!link_up_.empty() && !link_up_[link]) return false;
  const auto& l = topo_->link(link);
  const bool a_sw = l.a.node.kind == topo::NodeKind::kSwitch;
  const bool b_sw = l.b.node.kind == topo::NodeKind::kSwitch;
  if (a_sw && b_sw)
    return up_end_.at(link) != kUnoriented;  // excludes self-cables + cut-off
  const auto sw = a_sw ? l.a.node.index : l.b.node.index;
  return depths_[sw] != kUnreached;
}

bool UpDown::is_up_traversal(topo::LinkId link, std::uint16_t from) const {
  const auto up = up_end_.at(link);
  if (up == kUnoriented)
    throw std::invalid_argument("link has no up/down orientation");
  // Moving toward the up end is an up traversal; we are at `from`, so the
  // traversal is "up" exactly when `from` is NOT the up end.
  return up != from;
}

std::optional<std::uint16_t> UpDown::up_end(topo::LinkId link) const {
  const auto up = up_end_.at(link);
  if (up == kUnoriented) return std::nullopt;
  return up;
}

namespace {

/// Shortest legal up*/down* distances from `src` to every switch under a
/// given orientation: BFS over (switch, phase) states, phase 1 meaning a
/// down traversal already happened.
std::vector<unsigned> updown_distances(const UpDown& ud, std::uint16_t src) {
  const auto& topo = ud.topology();
  const auto n = topo.switch_count();
  std::vector<std::array<unsigned, 2>> dist(
      n, {std::numeric_limits<unsigned>::max(),
          std::numeric_limits<unsigned>::max()});
  std::queue<std::pair<std::uint16_t, std::uint8_t>> frontier;
  dist[src][0] = 0;
  frontier.push({src, 0});
  while (!frontier.empty()) {
    auto [sw, phase] = frontier.front();
    frontier.pop();
    const unsigned d = dist[sw][phase];
    for (auto lid : topo.links_of(topo::switch_id(sw))) {
      const auto& l = topo.link(lid);
      if (l.a.node.kind != topo::NodeKind::kSwitch ||
          l.b.node.kind != topo::NodeKind::kSwitch || l.a.node == l.b.node)
        continue;
      const std::uint16_t other =
          l.a.node.index == sw ? l.b.node.index : l.a.node.index;
      const bool up = ud.is_up_traversal(lid, sw);
      if (up && phase == 1) continue;
      const std::uint8_t next_phase = up ? 0 : 1;
      if (d + 1 < dist[other][next_phase]) {
        dist[other][next_phase] = d + 1;
        frontier.push({other, next_phase});
      }
    }
  }
  std::vector<unsigned> best(n);
  for (std::size_t s = 0; s < n; ++s) best[s] = std::min(dist[s][0], dist[s][1]);
  return best;
}

}  // namespace

std::uint16_t select_best_root(const topo::Topology& topo) {
  const auto n = topo.switch_count();
  if (n == 0) throw std::invalid_argument("no switches");

  // Hosts per switch: pairs between host-less switches carry no traffic.
  std::vector<unsigned> hosts(n, 0);
  for (std::uint16_t h = 0; h < topo.host_count(); ++h)
    ++hosts[topo.host_uplink(h).node.index];

  std::uint16_t best_root = 0;
  std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
  for (std::uint16_t root = 0; root < n; ++root) {
    UpDown ud(topo, root);
    std::uint64_t cost = 0;
    for (std::uint16_t s = 0; s < n; ++s) {
      if (hosts[s] == 0) continue;
      auto dist = updown_distances(ud, s);
      for (std::uint16_t d = 0; d < n; ++d)
        cost += static_cast<std::uint64_t>(hosts[s]) * hosts[d] * dist[d];
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_root = root;
    }
  }
  return best_root;
}

}  // namespace itb::routing
