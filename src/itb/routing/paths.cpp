#include "itb/routing/paths.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace itb::routing {

std::size_t HostPath::switch_traversals() const {
  std::size_t n = 0;
  for (const auto& s : segments) n += s.size();
  return n;
}

Router::Router(const UpDown& updown, ItbHostSelection selection)
    : updown_(&updown), selection_(selection) {
  const auto& topo = updown.topology();
  adj_.resize(topo.switch_count());
  itb_hosts_.resize(topo.switch_count());

  for (topo::LinkId lid = 0; lid < topo.link_count(); ++lid) {
    // Masked-down, self-cable, and cut-off links never enter the search
    // graph (link_usable covers all three; without a mask it reduces to the
    // old self-cable check).
    if (!updown.link_usable(lid)) continue;
    const auto& l = topo.link(lid);
    const bool a_sw = l.a.node.kind == topo::NodeKind::kSwitch;
    const bool b_sw = l.b.node.kind == topo::NodeKind::kSwitch;
    if (a_sw && b_sw) {
      const auto sa = l.a.node.index;
      const auto sb = l.b.node.index;
      adj_[sa].push_back(Hop{lid, sb, l.a.port, updown.is_up_traversal(lid, sa)});
      adj_[sb].push_back(Hop{lid, sa, l.b.port, updown.is_up_traversal(lid, sb)});
      continue;
    }
    // Usable host link: every reachable attached host is an ITB candidate.
    const auto sw_end = a_sw ? l.a : l.b;
    const auto host_end = a_sw ? l.b : l.a;
    itb_hosts_[sw_end.node.index].push_back(
        ItbCandidate{host_end.node.index, sw_end.port});
  }
  for (auto& hosts : itb_hosts_)
    std::sort(hosts.begin(), hosts.end(),
              [](const ItbCandidate& a, const ItbCandidate& b) {
                return a.host < b.host;
              });
}

const Router::ItbCandidate& Router::pick_itb(std::uint16_t sw,
                                             std::uint16_t src,
                                             std::uint16_t dst) const {
  const auto& hosts = itb_hosts_[sw];
  if (hosts.empty()) throw std::logic_error("no ITB host on switch");
  if (selection_ == ItbHostSelection::kLowestIndex) return hosts.front();
  // Deterministic spread: hash the pair over the candidates.
  const std::size_t idx =
      (static_cast<std::size_t>(src) * 31 + dst) % hosts.size();
  return hosts[idx];
}

namespace {

/// Dijkstra state: a switch plus the up*/down* phase. Phase 0: no down
/// traversal yet (up and down both legal). Phase 1: a down traversal
/// happened (only down legal until an ITB resets the phase).
struct State {
  std::uint16_t sw;
  std::uint8_t phase;
};

}  // namespace

Router::Search Router::relax(std::uint16_t src_switch, bool restrict_updown,
                             bool allow_itb) const {
  const auto n = updown_->topology().switch_count();

  Search out;
  out.src_switch = src_switch;
  // dist[sw][phase]; with restrictions off everything stays in phase 0.
  out.dist.resize(n);
  out.pred.resize(n);
  auto& dist = out.dist;
  auto& pred = out.pred;

  using QEntry = std::pair<SearchCost, State>;
  // Canonical pop order: (cost, switch, phase). With cost-only ordering the
  // winner among equal-cost states depends on heap internals (push order);
  // breaking ties on state id makes every pred assignment a pure function
  // of the search graph, which the incremental patcher relies on — a source
  // whose stored routes avoid all changed links provably re-solves to the
  // byte-identical row, so it can be skipped.
  auto cmp = [](const QEntry& a, const QEntry& b) {
    if (a.first != b.first) return a.first > b.first;
    if (a.second.sw != b.second.sw) return a.second.sw > b.second.sw;
    return a.second.phase > b.second.phase;
  };
  std::priority_queue<QEntry, std::vector<QEntry>, decltype(cmp)> queue(cmp);

  dist[src_switch][0] = SearchCost{0, 0};
  pred[src_switch][0] = SearchPred{0xFFFF, 0, -2};
  queue.push({SearchCost{0, 0}, State{src_switch, 0}});

  while (!queue.empty()) {
    auto [cost, st] = queue.top();
    queue.pop();
    if (cost != dist[st.sw][st.phase]) continue;  // stale entry

    for (std::size_t hi = 0; hi < adj_[st.sw].size(); ++hi) {
      const Hop& h = adj_[st.sw][hi];
      std::uint8_t next_phase;
      if (!restrict_updown) {
        next_phase = 0;
      } else if (h.up) {
        if (st.phase == 1) continue;  // down -> up forbidden
        next_phase = 0;
      } else {
        next_phase = 1;
      }
      const SearchCost next{cost.hops + 1, cost.itbs};
      if (next < dist[h.to_switch][next_phase]) {
        dist[h.to_switch][next_phase] = next;
        pred[h.to_switch][next_phase] =
            SearchPred{st.sw, st.phase, static_cast<int>(hi)};
        queue.push({next, State{h.to_switch, next_phase}});
      }
    }

    // ITB reset: eject at a host on this switch, re-inject in phase 0.
    if (allow_itb && restrict_updown && st.phase == 1 &&
        !itb_hosts_[st.sw].empty()) {
      const SearchCost next{cost.hops, cost.itbs + 1};
      if (next < dist[st.sw][0]) {
        dist[st.sw][0] = next;
        pred[st.sw][0] = SearchPred{st.sw, 1, -1};
        queue.push({next, State{st.sw, 0}});
      }
    }
  }
  return out;
}

HostPath Router::extract(const Search& s, std::uint16_t src_host,
                         std::uint16_t dst_host) const {
  const auto& topo = updown_->topology();
  const auto dst_up = topo.host_uplink(dst_host);
  const auto ss = s.src_switch;
  const auto sd = dst_up.node.index;
  const auto& dist = s.dist;
  const auto& pred = s.pred;

  const std::uint8_t best_phase = dist[sd][0] <= dist[sd][1] ? 0 : 1;
  if (dist[sd][best_phase].hops == std::numeric_limits<std::uint32_t>::max())
    throw std::logic_error("no route between hosts (disconnected?)");

  // Reconstruct the (switch, action) chain back to front.
  struct Step {
    std::uint16_t sw;
    int hop;  // adj index, or -1 for ITB reset at sw
  };
  std::vector<Step> steps;
  State cur{sd, best_phase};
  while (!(cur.sw == ss && cur.phase == 0 && pred[cur.sw][cur.phase].hop == -2)) {
    const SearchPred& p = pred[cur.sw][cur.phase];
    if (p.hop == -2) throw std::logic_error("route reconstruction failed");
    steps.push_back(Step{p.sw, p.hop});
    cur = State{p.sw, p.phase};
  }
  std::reverse(steps.begin(), steps.end());

  // Emit route-byte segments and channel list.
  HostPath path;
  path.src_host = src_host;
  path.dst_host = dst_host;
  path.segments.emplace_back();
  for (const Step& st : steps) {
    if (st.hop == -1) {
      // Ejection: current segment ends with the port to the in-transit
      // host; the next segment resumes at the same switch.
      const ItbCandidate& itb = pick_itb(st.sw, src_host, dst_host);
      path.segments.back().push_back(itb.port);
      path.in_transit_hosts.push_back(itb.host);
      path.segments.emplace_back();
      continue;
    }
    const Hop& h = adj_[st.sw][static_cast<std::size_t>(st.hop)];
    path.segments.back().push_back(h.out_port);
    const auto& l = topo.link(h.link);
    const bool fwd = l.a.node == topo::switch_id(st.sw) && l.a.port == h.out_port;
    path.trunk_channels.push_back(topo::Channel{h.link, fwd});
  }
  path.segments.back().push_back(dst_up.port);
  return path;
}

HostPath Router::search(std::uint16_t src_host, std::uint16_t dst_host,
                        bool restrict_updown, bool allow_itb) const {
  const auto& topo = updown_->topology();
  const auto ss = topo.host_uplink(src_host).node.index;
  return extract(relax(ss, restrict_updown, allow_itb), src_host, dst_host);
}

bool Router::host_usable(std::uint16_t host) const {
  const auto& topo = updown_->topology();
  if (!topo.host_attached(host)) return false;
  const auto lid = topo.link_at(topo::host_id(host), 0);
  return lid && updown_->link_usable(*lid);
}

std::vector<std::uint32_t> Router::min_hops_from_switch(std::uint16_t sw) const {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(adj_.size(), kInf);
  std::vector<std::uint16_t> frontier;
  frontier.reserve(adj_.size());
  dist[sw] = 0;
  frontier.push_back(sw);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const auto cur = frontier[head];
    for (const Hop& h : adj_[cur]) {
      if (dist[h.to_switch] != kInf) continue;
      dist[h.to_switch] = dist[cur] + 1;
      frontier.push_back(h.to_switch);
    }
  }
  return dist;
}

Router::SolveFlags Router::solve_flags(Policy policy) {
  switch (policy) {
    case Policy::kUpDown:
      return {/*restrict_updown=*/true, /*allow_itb=*/false};
    case Policy::kItb:
      return {/*restrict_updown=*/true, /*allow_itb=*/true};
    case Policy::kVcEscape:
      // Minimal lanes carry the primary search; the escape lane's
      // restricted routes are solved lazily per source when the ladder
      // cannot absorb a minimal path.
      return {/*restrict_updown=*/false, /*allow_itb=*/false};
  }
  return {/*restrict_updown=*/true, /*allow_itb=*/false};  // unreachable
}

std::vector<HostPath> Router::routes_from(std::uint16_t src_host, Policy policy,
                                          unsigned vc_lanes) const {
  const auto& topo = updown_->topology();
  constexpr auto kInfHops = std::numeric_limits<std::uint32_t>::max();
  std::vector<HostPath> row(topo.host_count());
  if (!host_usable(src_host)) return row;  // degraded fabric
  const auto ss = topo.host_uplink(src_host).node.index;
  const SolveFlags flags = solve_flags(policy);
  const auto s = relax(ss, flags.restrict_updown, flags.allow_itb);
  // Restricted fallback for VC-escape routes whose minimal path needs more
  // lanes than the ladder has; solved at most once per source.
  std::optional<Search> escape;
  for (std::uint16_t d = 0; d < row.size(); ++d) {
    if (d == src_host || !host_usable(d)) continue;
    // Destinations cut off by the mask keep an empty entry rather than
    // throwing in extract(); the NIC backstop (and the recovery engine's
    // unreachable accounting) handles them.
    const auto sd = topo.host_uplink(d).node.index;
    if (s.dist[sd][0].hops == kInfHops && s.dist[sd][1].hops == kInfHops)
      continue;
    row[d] = extract(s, src_host, d);
    if (policy == Policy::kVcEscape &&
        updown_segments(row[d].trunk_channels) > vc_lanes) {
      if (!escape) escape = relax(ss, /*restrict_updown=*/true,
                                  /*allow_itb=*/false);
      row[d] = extract(*escape, src_host, d);
    }
  }
  return row;
}

std::vector<std::size_t> Router::minimal_distances_from(
    std::uint16_t src_host) const {
  const auto& topo = updown_->topology();
  std::vector<std::size_t> row(topo.host_count(), 0);
  if (!host_usable(src_host)) return row;
  const auto s = relax(topo.host_uplink(src_host).node.index,
                       /*restrict_updown=*/false, /*allow_itb=*/false);
  for (std::uint16_t d = 0; d < row.size(); ++d) {
    if (d == src_host || !host_usable(d)) continue;
    const auto hops = s.dist[topo.host_uplink(d).node.index][0].hops;
    if (hops == std::numeric_limits<std::uint32_t>::max()) continue;
    row[d] = hops;
  }
  return row;
}

HostPath Router::updown_route(std::uint16_t src, std::uint16_t dst) const {
  return search(src, dst, /*restrict=*/true, /*allow_itb=*/false);
}

HostPath Router::minimal_route(std::uint16_t src, std::uint16_t dst) const {
  return search(src, dst, /*restrict=*/false, /*allow_itb=*/false);
}

HostPath Router::itb_route(std::uint16_t src, std::uint16_t dst) const {
  auto itb = search(src, dst, /*restrict=*/true, /*allow_itb=*/true);
  // The phase-reset search only legalises paths at switches that have
  // hosts, so it can come out longer than the unrestricted minimum when
  // some bare switch sits on every minimal path; in that case prefer
  // whichever legal route is shorter (ITB path can never be longer than
  // the plain up*/down* one because the latter is in its search space).
  return itb;
}

std::size_t Router::minimal_distance(std::uint16_t src, std::uint16_t dst) const {
  return minimal_route(src, dst).trunk_hops();
}

bool Router::is_valid_updown(const std::vector<topo::Channel>& trunks) const {
  bool went_down = false;
  for (const auto& c : trunks) {
    const auto from = updown_->topology().channel_source(c).node.index;
    const bool up = updown_->is_up_traversal(c.link, from);
    if (up && went_down) return false;
    if (!up) went_down = true;
  }
  return true;
}

std::size_t Router::updown_segments(
    const std::vector<topo::Channel>& trunks) const {
  std::size_t segments = 1;
  bool went_down = false;
  for (const auto& c : trunks) {
    const auto from = updown_->topology().channel_source(c).node.index;
    const bool up = updown_->is_up_traversal(c.link, from);
    if (up && went_down) {
      ++segments;
      went_down = false;
    }
    if (!up) went_down = true;
  }
  return segments;
}

std::string describe(const HostPath& path, const topo::Topology& topo) {
  std::string out = "h" + std::to_string(path.src_host);
  std::size_t seg = 0;
  // Re-derive the switch sequence from the segments by walking the route
  // bytes from the source uplink switch.
  auto cur = topo.host_uplink(path.src_host);
  for (seg = 0; seg < path.segments.size(); ++seg) {
    if (seg > 0) {
      out += " =ITB(h" + std::to_string(path.in_transit_hosts[seg - 1]) + ")=>";
      cur = topo.host_uplink(path.in_transit_hosts[seg - 1]);
    }
    for (auto port : path.segments[seg]) {
      out += " -> s" + std::to_string(cur.node.index);
      auto peer = topo.peer(cur.node, port);
      if (!peer) {
        out += " -> <dangling p" + std::to_string(port) + ">";
        return out;
      }
      cur = *peer;
    }
  }
  out += " -> " + topo::to_string(cur.node);
  return out;
}

}  // namespace itb::routing
