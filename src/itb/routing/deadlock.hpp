// Channel-dependency-graph deadlock analysis.
//
// Wormhole routing is deadlock-free iff the channel dependency graph (CDG)
// induced by the route set is acyclic (Dally & Seitz). A packet holding
// channel c_i while requesting c_{i+1} creates the dependency c_i -> c_{i+1}
// for every consecutive channel pair of every route. ITB ejection ends the
// wormhole: the packet is fully buffered at the in-transit host, so no
// dependency crosses an ejection point — exactly how the mechanism breaks
// the down->up cycles (§1).
//
// That classical result silently assumes the ejection buffer is always
// available. With a finite in-transit pool under backpressure (§4's
// stop-when-full variant) the buffer itself is a contended resource: a full
// NIC closes the channel into its host, and the buffers only free when the
// host's re-injection drains. The *buffer-augmented* graph models this by
// adding one node per host buffer pool and threading ITB routes through it:
//     ... -> IN(itb_host) -> buf(itb_host) -> OUT(itb_host) -> ...
// A cycle through a buffer node is exactly the §8 buffer-wait wedge the
// plain CDG cannot see. The same node vocabulary serves the runtime
// wait-for graph built by health::WaitGraphDiagnoser from live worm state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "itb/routing/paths.hpp"
#include "itb/routing/table.hpp"

namespace itb::routing {

/// CDG over the directed channels of a topology, optionally augmented with
/// one buffer node per host (the NIC's in-transit receive pool).
class DependencyGraph {
 public:
  /// Graph node: a directed channel, or a host's buffer pool.
  struct Node {
    bool is_buffer = false;
    topo::Channel channel{};  // valid when !is_buffer
    std::uint16_t host = 0;   // valid when is_buffer

    static Node of_channel(topo::Channel c) { return Node{false, c, 0}; }
    static Node of_buffer(std::uint16_t h) {
      return Node{true, topo::Channel{}, h};
    }
    bool operator==(const Node& o) const {
      return is_buffer == o.is_buffer &&
             (is_buffer ? host == o.host
                        : (channel.link == o.channel.link &&
                           channel.forward == o.channel.forward));
    }
  };

  explicit DependencyGraph(const topo::Topology& topo);

  /// Add the dependencies contributed by one route. Channel chains restart
  /// after every ITB ejection (and include the host access channels, which
  /// terminate/originate chains but never cycle).
  void add_route(const HostPath& path, const topo::Topology& topo);

  /// Add every route of a table.
  void add_table(const RouteTable& table, const topo::Topology& topo);

  /// Buffer-augmented variants: instead of restarting the chain at an ITB
  /// ejection, thread it through the in-transit host's buffer node. Predicts
  /// the §8 buffer-wait wedge of the finite stop-when-full pool; routes
  /// accepted by add_table but rejected here need §4 drop-on-full (or a
  /// runtime watchdog) to be live under load.
  void add_route_buffered(const HostPath& path, const topo::Topology& topo);
  void add_table_buffered(const RouteTable& table, const topo::Topology& topo);

  /// Explicit edges for tests and for the runtime wait-for graph.
  void add_dependency(topo::Channel from, topo::Channel to);
  void add_edge(Node from, Node to);

  bool has_cycle() const;

  /// One cycle as a channel sequence (empty when acyclic); for diagnostics.
  /// Buffer nodes are elided — use find_cycle_nodes() for the full cycle.
  std::vector<topo::Channel> find_cycle() const;

  /// One cycle including buffer nodes (empty when acyclic).
  std::vector<Node> find_cycle_nodes() const;

  /// True when the graph has a cycle that passes through at least one
  /// buffer node — the §8 wedge signature.
  bool cycle_through_buffer() const;

  /// "ch(3>) -> buf(h1) -> ch(5<)" rendering of a node sequence.
  static std::string describe(const std::vector<Node>& nodes);

  std::size_t edge_count() const;

 private:
  std::size_t channels_;  // directed channel node count (2 * links)
  std::size_t hosts_;     // buffer node count
  std::vector<std::vector<std::uint32_t>> out_;  // adjacency by node index

  // Node indexing: channels occupy [0, channels_), buffer nodes follow at
  // channels_ + host.
  static std::uint32_t channel_index(topo::Channel c) {
    return 2 * c.link + (c.forward ? 0 : 1);
  }
  std::uint32_t index(Node n) const {
    return n.is_buffer ? static_cast<std::uint32_t>(channels_ + n.host)
                       : channel_index(n.channel);
  }
  Node node_of(std::uint32_t idx) const {
    if (idx >= channels_)
      return Node::of_buffer(static_cast<std::uint16_t>(idx - channels_));
    return Node::of_channel(topo::Channel{idx / 2, (idx % 2) == 0});
  }

  void add_route_impl(const HostPath& path, const topo::Topology& topo,
                      bool buffered);
};

}  // namespace itb::routing
