// Channel-dependency-graph deadlock analysis.
//
// Wormhole routing is deadlock-free iff the channel dependency graph (CDG)
// induced by the route set is acyclic (Dally & Seitz). A packet holding
// channel c_i while requesting c_{i+1} creates the dependency c_i -> c_{i+1}
// for every consecutive channel pair of every route. ITB ejection ends the
// wormhole: the packet is fully buffered at the in-transit host, so no
// dependency crosses an ejection point — exactly how the mechanism breaks
// the down->up cycles (§1).
#pragma once

#include <cstdint>
#include <vector>

#include "itb/routing/paths.hpp"
#include "itb/routing/table.hpp"

namespace itb::routing {

/// CDG over the directed channels of a topology.
class DependencyGraph {
 public:
  explicit DependencyGraph(const topo::Topology& topo);

  /// Add the dependencies contributed by one route. Channel chains restart
  /// after every ITB ejection (and include the host access channels, which
  /// terminate/originate chains but never cycle).
  void add_route(const HostPath& path, const topo::Topology& topo);

  /// Add every route of a table.
  void add_table(const RouteTable& table, const topo::Topology& topo);

  /// Explicit edge for tests.
  void add_dependency(topo::Channel from, topo::Channel to);

  bool has_cycle() const;

  /// One cycle as a channel sequence (empty when acyclic); for diagnostics.
  std::vector<topo::Channel> find_cycle() const;

  std::size_t edge_count() const;

 private:
  std::size_t channels_;
  std::vector<std::vector<std::uint32_t>> out_;  // adjacency by channel index

  static std::uint32_t channel_index(topo::Channel c) {
    return 2 * c.link + (c.forward ? 0 : 1);
  }
  static topo::Channel channel_of(std::uint32_t idx) {
    return topo::Channel{idx / 2, (idx % 2) == 0};
  }
};

}  // namespace itb::routing
