// Channel-dependency-graph deadlock analysis.
//
// Wormhole routing is deadlock-free iff the channel dependency graph (CDG)
// induced by the route set is acyclic (Dally & Seitz). A packet holding
// channel c_i while requesting c_{i+1} creates the dependency c_i -> c_{i+1}
// for every consecutive channel pair of every route. ITB ejection ends the
// wormhole: the packet is fully buffered at the in-transit host, so no
// dependency crosses an ejection point — exactly how the mechanism breaks
// the down->up cycles (§1).
//
// That classical result silently assumes the ejection buffer is always
// available. With a finite in-transit pool under backpressure (§4's
// stop-when-full variant) the buffer itself is a contended resource: a full
// NIC closes the channel into its host, and the buffers only free when the
// host's re-injection drains. The *buffer-augmented* graph models this by
// adding one node per host buffer pool and threading ITB routes through it:
//     ... -> IN(itb_host) -> buf(itb_host) -> OUT(itb_host) -> ...
// A cycle through a buffer node is exactly the §8 buffer-wait wedge the
// plain CDG cannot see. The same node vocabulary serves the runtime
// wait-for graph built by health::WaitGraphDiagnoser from live worm state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "itb/routing/paths.hpp"
#include "itb/routing/table.hpp"

namespace itb::routing {

/// CDG over the directed channels of a topology, optionally augmented with
/// one buffer node per host (the NIC's in-transit receive pool). With
/// `lane_count` > 1 each directed channel splits into that many virtual-lane
/// nodes, so a multi-lane engine's deadlock-freedom claim ("the per-lane CDG
/// under my lane-selection function is acyclic") is checked in the same
/// vocabulary as the classical single-lane graph.
class DependencyGraph {
 public:
  /// Graph node: a directed channel lane, or a host's buffer pool.
  struct Node {
    bool is_buffer = false;
    topo::Channel channel{};  // valid when !is_buffer
    std::uint16_t host = 0;   // valid when is_buffer
    std::uint8_t lane = 0;    // valid when !is_buffer

    static Node of_channel(topo::Channel c, std::uint8_t lane = 0) {
      return Node{false, c, 0, lane};
    }
    static Node of_buffer(std::uint16_t h) {
      return Node{true, topo::Channel{}, h, 0};
    }
    bool operator==(const Node& o) const {
      return is_buffer == o.is_buffer &&
             (is_buffer ? host == o.host
                        : (channel.link == o.channel.link &&
                           channel.forward == o.channel.forward &&
                           lane == o.lane));
    }
  };

  explicit DependencyGraph(const topo::Topology& topo, unsigned lane_count = 1);

  /// Add the dependencies contributed by one route. Channel chains restart
  /// after every ITB ejection (and include the host access channels, which
  /// terminate/originate chains but never cycle).
  void add_route(const HostPath& path, const topo::Topology& topo);

  /// Add every route of a table.
  void add_table(const RouteTable& table, const topo::Topology& topo);

  /// Buffer-augmented variants: instead of restarting the chain at an ITB
  /// ejection, thread it through the in-transit host's buffer node. Predicts
  /// the §8 buffer-wait wedge of the finite stop-when-full pool; routes
  /// accepted by add_table but rejected here need §4 drop-on-full (or a
  /// runtime watchdog) to be live under load.
  void add_route_buffered(const HostPath& path, const topo::Topology& topo);
  void add_table_buffered(const RouteTable& table, const topo::Topology& topo);

  /// Explicit edges for tests and for the runtime wait-for graph.
  void add_dependency(topo::Channel from, topo::Channel to);
  void add_edge(Node from, Node to);

  bool has_cycle() const;

  /// One cycle as a channel sequence (empty when acyclic); for diagnostics.
  /// Buffer nodes are elided — use find_cycle_nodes() for the full cycle.
  std::vector<topo::Channel> find_cycle() const;

  /// One cycle including buffer nodes (empty when acyclic).
  std::vector<Node> find_cycle_nodes() const;

  /// True when the graph has a cycle that passes through at least one
  /// buffer node — the §8 wedge signature.
  bool cycle_through_buffer() const;

  /// "ch(3>) -> buf(h1) -> ch(5<,l1)" rendering of a node sequence (the
  /// lane suffix only appears for lanes above 0, so single-lane renderings
  /// are unchanged).
  static std::string describe(const std::vector<Node>& nodes);

  std::size_t edge_count() const;
  unsigned lane_count() const { return lanes_; }

 private:
  unsigned lanes_;        // virtual lanes per directed channel
  std::size_t channels_;  // channel-lane node count (2 * links * lanes_)
  std::size_t hosts_;     // buffer node count
  std::vector<std::vector<std::uint32_t>> out_;  // adjacency by node index

  // Node indexing: channel lanes occupy [0, channels_) grouped by physical
  // channel (2*link + dir, then lane), buffer nodes follow at channels_ +
  // host.
  std::uint32_t index(Node n) const {
    if (n.is_buffer) return static_cast<std::uint32_t>(channels_ + n.host);
    return (2 * n.channel.link + (n.channel.forward ? 0 : 1)) * lanes_ +
           n.lane;
  }
  Node node_of(std::uint32_t idx) const {
    if (idx >= channels_)
      return Node::of_buffer(static_cast<std::uint16_t>(idx - channels_));
    const std::uint32_t phys = idx / lanes_;
    return Node::of_channel(topo::Channel{phys / 2, (phys % 2) == 0},
                            static_cast<std::uint8_t>(idx % lanes_));
  }

  void add_route_impl(const HostPath& path, const topo::Topology& topo,
                      bool buffered);
};

}  // namespace itb::routing
