// All-pairs route tables.
//
// The Myrinet mapper computes a route from every host to every other host
// and downloads the table into each NIC's SRAM; the MCP stamps the route
// into the header of every outgoing packet (§4). A RouteTable is that
// product for one routing policy, plus aggregate statistics the motivation
// benches report (path length, link utilisation balance).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "itb/routing/paths.hpp"

namespace itb::routing {

/// Link-state change set handed to RouteTable::patch. Removed/added carry
/// links whose usability went down/up since the table was computed; a link
/// whose up*/down* orientation flipped (the masked BFS tree moved under it)
/// appears in BOTH. Host links classify themselves: the patcher derives ITB
/// candidate-set changes from them.
struct LinkDelta {
  std::vector<topo::LinkId> removed;
  std::vector<topo::LinkId> added;
  /// Degrade to an all-sources re-solve (queue overflow, root change).
  bool force_full = false;
};

/// What one patch round actually recomputed.
struct PatchStats {
  std::size_t sources_resolved = 0;
  std::size_t sources_total = 0;
  bool full = false;  // every source re-solved (forced or no index)
};

class RouteTable {
 public:
  /// Compute routes for every ordered host pair under `policy`. Each source
  /// host is one multi-destination solve (Router::routes_from); `jobs` fans
  /// the sources across that many threads (0 = hardware concurrency). Every
  /// source writes only its own row, and the row content depends only on
  /// (router, policy, src), so the table is bit-identical for any job count
  /// — CI byte-compares jobs=1 against jobs=8 dumps to hold that line.
  /// `vc_lanes` parameterises Policy::kVcEscape (ignored otherwise): routes
  /// whose up*/down* segment count exceeds it fall back to plain up*/down*.
  explicit RouteTable(const Router& router, Policy policy, unsigned jobs = 1,
                      unsigned vc_lanes = 2);

  Policy policy() const { return policy_; }
  std::size_t host_count() const { return hosts_; }
  unsigned vc_lanes() const { return vc_lanes_; }

  const HostPath& route(std::uint16_t src, std::uint16_t dst) const;

  /// Mean switch-switch hops over all pairs (src != dst).
  double average_trunk_hops() const;

  /// Fraction of pairs routed minimally. The per-source minimal distances
  /// also solve one search per source; `jobs` parallelises them the same
  /// way as the constructor (result is jobs-invariant).
  double minimal_fraction(const Router& router, unsigned jobs = 1) const;

  /// Mean ITBs per route (0 for kUpDown).
  double average_itbs() const;

  /// Per-directed-channel usage count over all routes; index by
  /// 2*link + (forward ? 0 : 1). The motivation benches use the spread of
  /// this vector to show up*/down*'s root congestion.
  std::vector<std::uint32_t> channel_usage(const topo::Topology& topo) const;

  /// Write every route in a stable text form (one line per pair: segments,
  /// in-transit hosts, trunk channels). Deterministic byte-for-byte given
  /// equal tables — the CI jobs-invariance gate compares these dumps.
  void dump(std::ostream& os) const;

  // ---- Incremental patching --------------------------------------------
  // The recovery engine keeps ONE table alive across fault epochs and asks
  // it to repair itself against a re-masked Router instead of re-solving
  // all pairs. Soundness rests on the canonical search order (see
  // Router::relax): a source is re-solved iff (a) any stored route touches
  // a removed link, (b) an ITB candidate set it uses changed, or (c) an
  // added link could attract it (unrestricted-hop lower bound <= stored
  // cost). Everything else is provably byte-identical, which the
  // verify-against-full tests and bench hold as an invariant.

  /// Monotonic epoch stamped by the recovery engine at each install; NICs
  /// compare in-flight sends against it to re-source across hot-swaps.
  std::uint64_t epoch() const { return epoch_; }
  void set_epoch(std::uint64_t e) { epoch_ = e; }

  /// Build the link->sources and itb-switch->sources reverse indexes from
  /// the current rows. Must be called once after a full solve (and is
  /// maintained by patch() for re-solved sources).
  void enable_patching(const Router& router);
  bool patching_enabled() const { return !links_used_.empty(); }

  /// Re-solve exactly the sources invalidated by `delta` against `router`
  /// (the post-change orientation/adjacency over the SAME topology ids the
  /// table was built with). Returns how much work was done.
  PatchStats patch(const Router& router, const LinkDelta& delta,
                   unsigned jobs = 1);

 private:
  Policy policy_;
  std::size_t hosts_;
  unsigned vc_lanes_;
  std::uint64_t epoch_ = 0;
  std::vector<HostPath> routes_;  // row-major [src * hosts_ + dst]

  /// Per source: which links its stored rows traverse (trunk channels,
  /// src/dst uplinks, in-transit host uplinks). Empty until
  /// enable_patching().
  std::vector<std::vector<char>> links_used_;
  /// Per source: switches whose ITB candidate list its rows depend on.
  std::vector<std::vector<char>> itb_switch_used_;
  /// Per source, kVcEscape only: 1 when any stored row is an up*/down*
  /// escape fallback. Fallback rows depend on the GLOBAL orientation (the
  /// ladder-feasibility test runs over minimal paths the table does not
  /// store), so the link reverse index cannot prove them stable — patch()
  /// conservatively re-solves every fallback source on any delta. Minimal
  /// rows stay covered by the usual (a)/(b)/(c) tests: the unrestricted
  /// relax is orientation-blind and an orientation flip of a traversed
  /// link always lands in the delta as removed+added.
  std::vector<char> vc_fallback_;

  /// Solve-generation shortcut: each distinct (usability, orientation)
  /// graph state is interned once; a source records the state it was last
  /// actually re-solved under. A patch whose target state matches a
  /// source's solve state skips it outright — routes_from is a pure
  /// function of that state, so the stored row IS the re-solve result.
  /// This is what makes the close of a clean down->up fault cycle free:
  /// restoring a link returns to the boot state, and every source that was
  /// never re-solved in between still carries the boot generation.
  struct GraphState {
    std::uint64_t id;
    std::vector<std::uint32_t> encoded;
  };
  std::vector<GraphState> gen_states_;  // bounded intern pool
  std::uint64_t next_gen_ = 0;
  std::vector<std::uint64_t> solved_gen_;  // per source; empty until enabled

  std::uint64_t intern_state(const Router& router);
  void index_source(const Router& router, std::uint16_t src);

  std::size_t index(std::uint16_t src, std::uint16_t dst) const;
};

}  // namespace itb::routing
