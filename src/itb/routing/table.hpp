// All-pairs route tables.
//
// The Myrinet mapper computes a route from every host to every other host
// and downloads the table into each NIC's SRAM; the MCP stamps the route
// into the header of every outgoing packet (§4). A RouteTable is that
// product for one routing policy, plus aggregate statistics the motivation
// benches report (path length, link utilisation balance).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "itb/routing/paths.hpp"

namespace itb::routing {

class RouteTable {
 public:
  /// Compute routes for every ordered host pair under `policy`. Each source
  /// host is one multi-destination solve (Router::routes_from); `jobs` fans
  /// the sources across that many threads (0 = hardware concurrency). Every
  /// source writes only its own row, and the row content depends only on
  /// (router, policy, src), so the table is bit-identical for any job count
  /// — CI byte-compares jobs=1 against jobs=8 dumps to hold that line.
  explicit RouteTable(const Router& router, Policy policy, unsigned jobs = 1);

  Policy policy() const { return policy_; }
  std::size_t host_count() const { return hosts_; }

  const HostPath& route(std::uint16_t src, std::uint16_t dst) const;

  /// Mean switch-switch hops over all pairs (src != dst).
  double average_trunk_hops() const;

  /// Fraction of pairs routed minimally. The per-source minimal distances
  /// also solve one search per source; `jobs` parallelises them the same
  /// way as the constructor (result is jobs-invariant).
  double minimal_fraction(const Router& router, unsigned jobs = 1) const;

  /// Mean ITBs per route (0 for kUpDown).
  double average_itbs() const;

  /// Per-directed-channel usage count over all routes; index by
  /// 2*link + (forward ? 0 : 1). The motivation benches use the spread of
  /// this vector to show up*/down*'s root congestion.
  std::vector<std::uint32_t> channel_usage(const topo::Topology& topo) const;

  /// Write every route in a stable text form (one line per pair: segments,
  /// in-transit hosts, trunk channels). Deterministic byte-for-byte given
  /// equal tables — the CI jobs-invariance gate compares these dumps.
  void dump(std::ostream& os) const;

 private:
  Policy policy_;
  std::size_t hosts_;
  std::vector<HostPath> routes_;  // row-major [src * hosts_ + dst]

  std::size_t index(std::uint16_t src, std::uint16_t dst) const;
};

}  // namespace itb::routing
