// All-pairs route tables.
//
// The Myrinet mapper computes a route from every host to every other host
// and downloads the table into each NIC's SRAM; the MCP stamps the route
// into the header of every outgoing packet (§4). A RouteTable is that
// product for one routing policy, plus aggregate statistics the motivation
// benches report (path length, link utilisation balance).
#pragma once

#include <cstdint>
#include <vector>

#include "itb/routing/paths.hpp"

namespace itb::routing {

enum class Policy : std::uint8_t {
  kUpDown,  // stock GM routing
  kItb,     // minimal routing legalised with in-transit buffers
};

const char* to_string(Policy p);

class RouteTable {
 public:
  /// Compute routes for every ordered host pair under `policy`.
  RouteTable(const Router& router, Policy policy);

  Policy policy() const { return policy_; }
  std::size_t host_count() const { return hosts_; }

  const HostPath& route(std::uint16_t src, std::uint16_t dst) const;

  /// Mean switch-switch hops over all pairs (src != dst).
  double average_trunk_hops() const;

  /// Fraction of pairs routed minimally.
  double minimal_fraction(const Router& router) const;

  /// Mean ITBs per route (0 for kUpDown).
  double average_itbs() const;

  /// Per-directed-channel usage count over all routes; index by
  /// 2*link + (forward ? 0 : 1). The motivation benches use the spread of
  /// this vector to show up*/down*'s root congestion.
  std::vector<std::uint32_t> channel_usage(const topo::Topology& topo) const;

 private:
  Policy policy_;
  std::size_t hosts_;
  std::vector<HostPath> routes_;  // row-major [src * hosts_ + dst]

  std::size_t index(std::uint16_t src, std::uint16_t dst) const;
};

}  // namespace itb::routing
