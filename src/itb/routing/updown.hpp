// up*/down* link orientation (Autonet/Myrinet routing, paper §1).
//
// A breadth-first spanning tree is computed over the switch graph; the "up"
// end of every switch-switch link is (1) the end closer to the root, or
// (2) the end with the lower switch ID when both ends are at the same tree
// level. Every cycle then contains at least one up and one down link, and
// forbidding down->up transitions breaks all cyclic channel dependencies.
//
// Host links and switch self-cables carry no orientation: hosts are leaves
// (they cannot appear mid-path without an ITB ejection) and self-cables are
// excluded from route search.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "itb/topo/topology.hpp"

namespace itb::routing {

/// Orientation of all switch-switch links of one topology.
class UpDown {
 public:
  /// Compute the orientation. `root` defaults to switch 0 (the Myrinet
  /// mapper picks a deterministic root; we follow the lowest-ID convention).
  /// Throws when the switch graph is disconnected.
  explicit UpDown(const topo::Topology& topo, std::uint16_t root = 0);

  /// Masked orientation over the true fabric: `link_up[l]` false excludes
  /// link `l` from the spanning tree and from every route search built on
  /// top. Unlike the unmasked constructor this tolerates switches cut off
  /// from `root` — they stay unreached, their links unoriented, and
  /// link_usable() reports them unusable. The incremental recovery engine
  /// uses this to keep switch/host/link ids stable across fault epochs
  /// instead of renumbering through a degraded-topology rebuild.
  UpDown(const topo::Topology& topo, std::uint16_t root,
         std::vector<char> link_up);

  std::uint16_t root() const { return root_; }

  /// BFS tree depth of a switch.
  unsigned depth(std::uint16_t sw) const { return depths_.at(sw); }

  /// True when the BFS reached this switch (always true without a mask).
  bool reached(std::uint16_t sw) const;

  /// True when a route may traverse this link: not masked down, not a
  /// self-cable, and its switch end(s) reached from the root. Host links
  /// are usable when their switch end is reached.
  bool link_usable(topo::LinkId link) const;

  /// True if traversing `link` out of switch `from` moves in the up
  /// direction (toward the link's up end). Only valid for switch-switch,
  /// non-self links.
  bool is_up_traversal(topo::LinkId link, std::uint16_t from) const;

  /// The switch at the up end of a switch-switch link; nullopt for host
  /// links and self-cables (unoriented).
  std::optional<std::uint16_t> up_end(topo::LinkId link) const;

  const topo::Topology& topology() const { return *topo_; }

 private:
  UpDown(const topo::Topology& topo, std::uint16_t root,
         std::vector<char> link_up, bool allow_partial);

  const topo::Topology* topo_;
  std::uint16_t root_;
  std::vector<unsigned> depths_;
  /// Per link: up-end switch index, or 0xFFFF for unoriented links.
  std::vector<std::uint16_t> up_end_;
  /// Empty = no mask (every link up).
  std::vector<char> link_up_;
};

/// Root selection matters: a poorly placed spanning-tree root lengthens
/// up*/down* paths and worsens the congestion around it (the follow-up work
/// this paper cites combines ITBs with "optimized routing schemes", of
/// which root optimisation is the simplest). Returns the switch whose
/// orientation minimises the host-weighted sum of all-pairs shortest legal
/// up*/down* distances (exhaustive over candidate roots; ties break toward
/// the lower switch id).
std::uint16_t select_best_root(const topo::Topology& topo);

}  // namespace itb::routing
