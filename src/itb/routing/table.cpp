#include "itb/routing/table.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "itb/sim/parallel.hpp"

namespace itb::routing {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kUpDown:
      return "up*/down*";
    case Policy::kItb:
      return "UD+ITB";
    case Policy::kVcEscape:
      return "VC-escape";
  }
  return "?";
}

RouteTable::RouteTable(const Router& router, Policy policy, unsigned jobs,
                       unsigned vc_lanes)
    : policy_(policy),
      hosts_(router.topology().host_count()),
      vc_lanes_(vc_lanes) {
  // Unattached hosts appear in degraded topologies (fault windows that cut
  // a host off); routes_from leaves their pairs — and the diagonal — as
  // empty HostPaths, exactly like the old per-pair loop.
  routes_.resize(hosts_ * hosts_);
  sim::ParallelRunner(jobs).run_indexed(hosts_, [&](std::size_t s) {
    auto row =
        router.routes_from(static_cast<std::uint16_t>(s), policy_, vc_lanes_);
    std::move(row.begin(), row.end(), routes_.begin() + s * hosts_);
  });
}

std::size_t RouteTable::index(std::uint16_t src, std::uint16_t dst) const {
  if (src >= hosts_ || dst >= hosts_ || src == dst)
    throw std::out_of_range("bad host pair");
  return static_cast<std::size_t>(src) * hosts_ + dst;
}

const HostPath& RouteTable::route(std::uint16_t src, std::uint16_t dst) const {
  return routes_[index(src, dst)];
}

double RouteTable::average_trunk_hops() const {
  std::size_t total = 0, pairs = 0;
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      const HostPath& r = route(s, d);
      if (r.segments.empty()) continue;  // unreachable in a degraded table
      total += r.trunk_hops();
      ++pairs;
    }
  return pairs ? static_cast<double>(total) / static_cast<double>(pairs) : 0.0;
}

double RouteTable::minimal_fraction(const Router& router, unsigned jobs) const {
  std::vector<std::size_t> minimal_per_src(hosts_, 0);
  std::vector<std::size_t> pairs_per_src(hosts_, 0);
  sim::ParallelRunner(jobs).run_indexed(hosts_, [&](std::size_t s) {
    const auto dist = router.minimal_distances_from(static_cast<std::uint16_t>(s));
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      const HostPath& r = routes_[s * hosts_ + d];
      if (r.segments.empty()) continue;  // unreachable in a degraded table
      if (r.trunk_hops() == dist[d]) ++minimal_per_src[s];
      ++pairs_per_src[s];
    }
  });
  std::size_t minimal = 0, pairs = 0;
  for (std::size_t s = 0; s < hosts_; ++s) {
    minimal += minimal_per_src[s];
    pairs += pairs_per_src[s];
  }
  return pairs ? static_cast<double>(minimal) / static_cast<double>(pairs) : 1.0;
}

double RouteTable::average_itbs() const {
  std::size_t total = 0, pairs = 0;
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      const HostPath& r = route(s, d);
      if (r.segments.empty()) continue;  // unreachable in a degraded table
      total += r.itb_count();
      ++pairs;
    }
  return pairs ? static_cast<double>(total) / static_cast<double>(pairs) : 0.0;
}

std::vector<std::uint32_t> RouteTable::channel_usage(
    const topo::Topology& topo) const {
  std::vector<std::uint32_t> usage(topo.link_count() * 2, 0);
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      for (const auto& c : route(s, d).trunk_channels)
        ++usage[2 * c.link + (c.forward ? 0 : 1)];
    }
  return usage;
}

void RouteTable::index_source(const Router& router, std::uint16_t src) {
  const auto& topo = router.topology();
  auto& lu = links_used_[src];
  auto& iu = itb_switch_used_[src];
  std::fill(lu.begin(), lu.end(), 0);
  std::fill(iu.begin(), iu.end(), 0);
  const auto uplink = [&](std::uint16_t h) {
    return topo.link_at(topo::host_id(h), 0);
  };
  bool any = false;
  for (std::uint16_t d = 0; d < hosts_; ++d) {
    if (d == src) continue;
    const HostPath& r = routes_[static_cast<std::size_t>(src) * hosts_ + d];
    if (r.segments.empty()) continue;
    any = true;
    if (auto l = uplink(d)) lu[*l] = 1;
    for (const auto& c : r.trunk_channels) lu[c.link] = 1;
    for (auto h : r.in_transit_hosts) {
      if (auto l = uplink(h)) lu[*l] = 1;
      iu[topo.host_uplink(h).node.index] = 1;
    }
  }
  // The source's own uplink carries every nonempty row.
  if (any)
    if (auto l = uplink(src)) lu[*l] = 1;
  // A VC row longer than its minimal distance is an escape fallback; the
  // source carries the conservative "re-solve on any delta" mark (see the
  // vc_fallback_ comment in the header).
  if (policy_ == Policy::kVcEscape) {
    vc_fallback_[src] = 0;
    const auto dist = router.minimal_distances_from(src);
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (d == src) continue;
      const HostPath& r = routes_[static_cast<std::size_t>(src) * hosts_ + d];
      if (r.segments.empty()) continue;
      if (r.trunk_hops() > dist[d]) {
        vc_fallback_[src] = 1;
        break;
      }
    }
  }
}

std::uint64_t RouteTable::intern_state(const Router& router) {
  const auto& topo = router.topology();
  const auto& ud = router.updown();
  std::vector<std::uint32_t> encoded(topo.link_count());
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    if (!ud.link_usable(l))
      encoded[l] = 0xFFFFFFFFu;
    else if (const auto up = ud.up_end(l))
      encoded[l] = *up;
    else
      encoded[l] = 0xFFFFFFFEu;  // usable host link (never oriented)
  }
  for (const auto& gs : gen_states_)
    if (gs.encoded == encoded) return gs.id;
  // Bounded pool: evicting an old state only loses the shortcut for
  // sources still stamped with it (ids are never reused), never soundness.
  if (gen_states_.size() >= 64) gen_states_.erase(gen_states_.begin());
  gen_states_.push_back(GraphState{++next_gen_, std::move(encoded)});
  return gen_states_.back().id;
}

void RouteTable::enable_patching(const Router& router) {
  const auto& topo = router.topology();
  if (topo.host_count() != hosts_)
    throw std::invalid_argument("patching needs stable topology coordinates");
  links_used_.assign(hosts_, std::vector<char>(topo.link_count(), 0));
  itb_switch_used_.assign(hosts_, std::vector<char>(topo.switch_count(), 0));
  vc_fallback_.assign(hosts_, 0);
  for (std::uint16_t s = 0; s < hosts_; ++s) index_source(router, s);
  solved_gen_.assign(hosts_, intern_state(router));
}

PatchStats RouteTable::patch(const Router& router, const LinkDelta& delta,
                             unsigned jobs) {
  const auto& topo = router.topology();
  PatchStats st;
  st.sources_total = hosts_;

  const bool indexed = links_used_.size() == hosts_ &&
                       (hosts_ == 0 ||
                        links_used_[0].size() == topo.link_count());
  std::vector<char> invalid(hosts_, 0);
  const std::uint64_t target_gen = indexed ? intern_state(router) : 0;

  if (delta.force_full || !indexed) {
    std::fill(invalid.begin(), invalid.end(), 1);
    st.full = true;
  } else {
    // Classify the delta. Trunk additions (including the "added" half of an
    // orientation flip) become attraction tests; host-link churn marks the
    // switch's ITB candidate list dirty, and an added host link additionally
    // makes its switch a (potential) new phase-reset point.
    struct Attract {
      std::vector<std::uint32_t> da, db;  // db empty = reuse da (ITB point)
      std::uint32_t extra;                // hop cost of crossing the link
    };
    std::vector<Attract> attracts;
    std::vector<char> itb_dirty(topo.switch_count(), 0);
    bool any_itb_dirty = false;

    const auto classify = [&](topo::LinkId lid, bool added) {
      const auto& l = topo.link(lid);
      const bool a_sw = l.a.node.kind == topo::NodeKind::kSwitch;
      const bool b_sw = l.b.node.kind == topo::NodeKind::kSwitch;
      if (a_sw && b_sw) {
        if (added && !(l.a.node == l.b.node))
          attracts.push_back(
              Attract{router.min_hops_from_switch(l.a.node.index),
                      router.min_hops_from_switch(l.b.node.index), 1});
        return;
      }
      const auto sw = a_sw ? l.a.node.index : l.b.node.index;
      const auto host = a_sw ? l.b.node.index : l.a.node.index;
      itb_dirty[sw] = 1;
      any_itb_dirty = true;
      if (added) {
        invalid[host] = 1;  // the restored host gains a whole row
        attracts.push_back(
            Attract{router.min_hops_from_switch(sw), {}, 0});
      }
    };
    for (auto l : delta.removed) classify(l, /*added=*/false);
    for (auto l : delta.added) classify(l, /*added=*/true);

    // Generation shortcut: a source whose last re-solve ran against this
    // exact graph state needs nothing — its row IS routes_from's output
    // for the patch target, whatever the delta looks like.
    for (std::uint16_t s = 0; s < hosts_; ++s)
      if (solved_gen_[s] == target_gen) invalid[s] = 0;

    // VC-escape fallback rows depend on the whole orientation, not just the
    // links they traverse — conservatively re-solve their sources on any
    // non-empty delta (unless the generation shortcut already proved them).
    if (policy_ == Policy::kVcEscape &&
        (!delta.removed.empty() || !delta.added.empty()))
      for (std::uint16_t s = 0; s < hosts_; ++s)
        if (vc_fallback_[s] && solved_gen_[s] != target_gen) invalid[s] = 1;

    // (a) a stored route traverses a removed link; (b) an ITB candidate
    // list the source depends on changed.
    for (std::uint16_t s = 0; s < hosts_; ++s) {
      if (invalid[s] || solved_gen_[s] == target_gen) continue;
      for (auto l : delta.removed)
        if (links_used_[s][l]) {
          invalid[s] = 1;
          break;
        }
      if (invalid[s] || !any_itb_dirty) continue;
      const auto& iu = itb_switch_used_[s];
      for (std::uint16_t sw = 0; sw < itb_dirty.size(); ++sw)
        if (itb_dirty[sw] && iu[sw]) {
          invalid[s] = 1;
          break;
        }
    }

    // (c) an added link (or new reset point) could attract the source: the
    // unrestricted hop distance through it lower-bounds any restricted
    // route, and hops are the primary lex key — so bound > stored hops
    // proves the stored row survives; bound <= means a shorter OR
    // equal-cost canonical winner may exist, re-solve. Empty entries toward
    // usable destinations are conservatively re-solved too (the addition
    // may have connected them).
    if (!attracts.empty()) {
      constexpr std::uint64_t kInf = std::numeric_limits<std::uint32_t>::max();
      for (std::uint16_t s = 0; s < hosts_; ++s) {
        if (invalid[s] || solved_gen_[s] == target_gen ||
            !router.host_usable(s))
          continue;
        const auto ss = topo.host_uplink(s).node.index;
        for (std::uint16_t d = 0; d < hosts_ && !invalid[s]; ++d) {
          if (d == s || !router.host_usable(d)) continue;
          const HostPath& r =
              routes_[static_cast<std::size_t>(s) * hosts_ + d];
          if (r.segments.empty()) {
            invalid[s] = 1;
            break;
          }
          const auto sd = topo.host_uplink(d).node.index;
          const std::uint64_t stored = r.trunk_hops();
          for (const auto& a : attracts) {
            const auto& db = a.db.empty() ? a.da : a.db;
            const std::uint64_t fwd =
                std::min(kInf, static_cast<std::uint64_t>(a.da[ss]) +
                                   a.extra + db[sd]);
            const std::uint64_t rev =
                std::min(kInf, static_cast<std::uint64_t>(db[ss]) + a.extra +
                                   a.da[sd]);
            if (std::min(fwd, rev) <= stored) {
              invalid[s] = 1;
              break;
            }
          }
        }
      }
    }
  }

  std::vector<std::uint16_t> work;
  for (std::uint16_t s = 0; s < hosts_; ++s)
    if (invalid[s]) work.push_back(s);
  st.sources_resolved = work.size();

  sim::ParallelRunner(jobs).run_indexed(work.size(), [&](std::size_t i) {
    const auto s = work[i];
    auto row = router.routes_from(s, policy_, vc_lanes_);
    std::move(row.begin(), row.end(),
              routes_.begin() + static_cast<std::size_t>(s) * hosts_);
    if (indexed) {
      index_source(router, s);  // each worker touches only row s
      solved_gen_[s] = target_gen;
    }
  });
  return st;
}

void RouteTable::dump(std::ostream& os) const {
  os << "policy=" << to_string(policy_);
  // Lane count is part of a VC table's identity (it decides which pairs
  // fall back); keep UD/ITB headers byte-identical to the pre-engine dumps.
  if (policy_ == Policy::kVcEscape) os << " lanes=" << vc_lanes_;
  os << " hosts=" << hosts_ << "\n";
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      const HostPath& r = routes_[static_cast<std::size_t>(s) * hosts_ + d];
      os << s << ">" << d << " seg";
      for (const auto& seg : r.segments) {
        os << ":";
        for (auto byte : seg) os << " " << static_cast<unsigned>(byte);
      }
      os << " itb";
      for (auto h : r.in_transit_hosts) os << " " << h;
      os << " ch";
      for (const auto& c : r.trunk_channels)
        os << " " << c.link << (c.forward ? "+" : "-");
      os << "\n";
    }
}

}  // namespace itb::routing
