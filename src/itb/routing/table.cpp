#include "itb/routing/table.hpp"

#include <stdexcept>

namespace itb::routing {

const char* to_string(Policy p) {
  return p == Policy::kUpDown ? "up*/down*" : "UD+ITB";
}

RouteTable::RouteTable(const Router& router, Policy policy)
    : policy_(policy), hosts_(router.topology().host_count()) {
  const auto& topo = router.topology();
  routes_.reserve(hosts_ * hosts_);
  for (std::uint16_t s = 0; s < hosts_; ++s) {
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      // Unattached hosts appear in degraded topologies (fault windows that
      // cut a host off); their pairs get empty routes, like the diagonal.
      if (s == d || !topo.host_attached(s) || !topo.host_attached(d)) {
        routes_.emplace_back();  // unused diagonal / unreachable slot
        continue;
      }
      routes_.push_back(policy == Policy::kUpDown ? router.updown_route(s, d)
                                                  : router.itb_route(s, d));
    }
  }
}

std::size_t RouteTable::index(std::uint16_t src, std::uint16_t dst) const {
  if (src >= hosts_ || dst >= hosts_ || src == dst)
    throw std::out_of_range("bad host pair");
  return static_cast<std::size_t>(src) * hosts_ + dst;
}

const HostPath& RouteTable::route(std::uint16_t src, std::uint16_t dst) const {
  return routes_[index(src, dst)];
}

double RouteTable::average_trunk_hops() const {
  std::size_t total = 0, pairs = 0;
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      const HostPath& r = route(s, d);
      if (r.segments.empty()) continue;  // unreachable in a degraded table
      total += r.trunk_hops();
      ++pairs;
    }
  return pairs ? static_cast<double>(total) / static_cast<double>(pairs) : 0.0;
}

double RouteTable::minimal_fraction(const Router& router) const {
  std::size_t minimal = 0, pairs = 0;
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      const HostPath& r = route(s, d);
      if (r.segments.empty()) continue;  // unreachable in a degraded table
      if (r.trunk_hops() == router.minimal_distance(s, d)) ++minimal;
      ++pairs;
    }
  return pairs ? static_cast<double>(minimal) / static_cast<double>(pairs) : 1.0;
}

double RouteTable::average_itbs() const {
  std::size_t total = 0, pairs = 0;
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      const HostPath& r = route(s, d);
      if (r.segments.empty()) continue;  // unreachable in a degraded table
      total += r.itb_count();
      ++pairs;
    }
  return pairs ? static_cast<double>(total) / static_cast<double>(pairs) : 0.0;
}

std::vector<std::uint32_t> RouteTable::channel_usage(
    const topo::Topology& topo) const {
  std::vector<std::uint32_t> usage(topo.link_count() * 2, 0);
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      for (const auto& c : route(s, d).trunk_channels)
        ++usage[2 * c.link + (c.forward ? 0 : 1)];
    }
  return usage;
}

}  // namespace itb::routing
