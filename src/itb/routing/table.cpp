#include "itb/routing/table.hpp"

#include <ostream>
#include <stdexcept>

#include "itb/sim/parallel.hpp"

namespace itb::routing {

const char* to_string(Policy p) {
  return p == Policy::kUpDown ? "up*/down*" : "UD+ITB";
}

RouteTable::RouteTable(const Router& router, Policy policy, unsigned jobs)
    : policy_(policy), hosts_(router.topology().host_count()) {
  // Unattached hosts appear in degraded topologies (fault windows that cut
  // a host off); routes_from leaves their pairs — and the diagonal — as
  // empty HostPaths, exactly like the old per-pair loop.
  routes_.resize(hosts_ * hosts_);
  sim::ParallelRunner(jobs).run_indexed(hosts_, [&](std::size_t s) {
    auto row = router.routes_from(static_cast<std::uint16_t>(s), policy_);
    std::move(row.begin(), row.end(), routes_.begin() + s * hosts_);
  });
}

std::size_t RouteTable::index(std::uint16_t src, std::uint16_t dst) const {
  if (src >= hosts_ || dst >= hosts_ || src == dst)
    throw std::out_of_range("bad host pair");
  return static_cast<std::size_t>(src) * hosts_ + dst;
}

const HostPath& RouteTable::route(std::uint16_t src, std::uint16_t dst) const {
  return routes_[index(src, dst)];
}

double RouteTable::average_trunk_hops() const {
  std::size_t total = 0, pairs = 0;
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      const HostPath& r = route(s, d);
      if (r.segments.empty()) continue;  // unreachable in a degraded table
      total += r.trunk_hops();
      ++pairs;
    }
  return pairs ? static_cast<double>(total) / static_cast<double>(pairs) : 0.0;
}

double RouteTable::minimal_fraction(const Router& router, unsigned jobs) const {
  std::vector<std::size_t> minimal_per_src(hosts_, 0);
  std::vector<std::size_t> pairs_per_src(hosts_, 0);
  sim::ParallelRunner(jobs).run_indexed(hosts_, [&](std::size_t s) {
    const auto dist = router.minimal_distances_from(static_cast<std::uint16_t>(s));
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      const HostPath& r = routes_[s * hosts_ + d];
      if (r.segments.empty()) continue;  // unreachable in a degraded table
      if (r.trunk_hops() == dist[d]) ++minimal_per_src[s];
      ++pairs_per_src[s];
    }
  });
  std::size_t minimal = 0, pairs = 0;
  for (std::size_t s = 0; s < hosts_; ++s) {
    minimal += minimal_per_src[s];
    pairs += pairs_per_src[s];
  }
  return pairs ? static_cast<double>(minimal) / static_cast<double>(pairs) : 1.0;
}

double RouteTable::average_itbs() const {
  std::size_t total = 0, pairs = 0;
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      const HostPath& r = route(s, d);
      if (r.segments.empty()) continue;  // unreachable in a degraded table
      total += r.itb_count();
      ++pairs;
    }
  return pairs ? static_cast<double>(total) / static_cast<double>(pairs) : 0.0;
}

std::vector<std::uint32_t> RouteTable::channel_usage(
    const topo::Topology& topo) const {
  std::vector<std::uint32_t> usage(topo.link_count() * 2, 0);
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      for (const auto& c : route(s, d).trunk_channels)
        ++usage[2 * c.link + (c.forward ? 0 : 1)];
    }
  return usage;
}

void RouteTable::dump(std::ostream& os) const {
  os << "policy=" << to_string(policy_) << " hosts=" << hosts_ << "\n";
  for (std::uint16_t s = 0; s < hosts_; ++s)
    for (std::uint16_t d = 0; d < hosts_; ++d) {
      if (s == d) continue;
      const HostPath& r = routes_[static_cast<std::size_t>(s) * hosts_ + d];
      os << s << ">" << d << " seg";
      for (const auto& seg : r.segments) {
        os << ":";
        for (auto byte : seg) os << " " << static_cast<unsigned>(byte);
      }
      os << " itb";
      for (auto h : r.in_transit_hosts) os << " " << h;
      os << " ch";
      for (const auto& c : r.trunk_channels)
        os << " " << c.link << (c.forward ? "+" : "-");
      os << "\n";
    }
}

}  // namespace itb::routing
