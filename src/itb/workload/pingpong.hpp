// The paper's measurement workload: gm_allsize-style ping-pong.
//
// Host A sends an L-byte message; host B's receive handler immediately
// replies with L bytes; A halves the round-trip time. The paper averages
// 100 iterations per message size (§5); we do the same by default.
#pragma once

#include <cstdint>
#include <vector>

#include "itb/gm/port.hpp"
#include "itb/sim/stats.hpp"
#include "itb/telemetry/histogram.hpp"
#include "itb/telemetry/sampler.hpp"

namespace itb::workload {

struct AllsizeConfig {
  int iterations = 100;
  /// Message sizes to sweep; defaults mirror gm_allsize's powers of two.
  std::vector<std::size_t> sizes = {4,   8,    16,   32,   64,   128,  256,
                                    512, 1024, 2048, 4096, 8192, 16384};
  /// Optional telemetry sampler (usually the cluster's) resumed before
  /// every iteration, so draining the queue between iterations — which
  /// parks the sampler — still yields continuous time series.
  telemetry::Sampler* sampler = nullptr;
};

struct AllsizeRow {
  std::size_t size = 0;
  double half_rtt_ns = 0;   // mean over iterations
  double min_ns = 0;
  double max_ns = 0;
  double stddev_ns = 0;
  double p50_ns = 0;
  double p95_ns = 0;
  double p99_ns = 0;
  /// Full half-RTT distribution over the iterations.
  telemetry::LatencyHistogram hist;
};

/// Run the ping-pong between two ports sharing one event queue. The queue
/// is drained between iterations, so the network is unloaded — exactly the
/// paper's testbed condition.
std::vector<AllsizeRow> run_allsize(sim::EventQueue& queue, gm::GmPort& a,
                                    gm::GmPort& b, const AllsizeConfig& config = {});

/// Single-size convenience wrapper.
AllsizeRow run_pingpong(sim::EventQueue& queue, gm::GmPort& a, gm::GmPort& b,
                        std::size_t size, int iterations = 100);

}  // namespace itb::workload
