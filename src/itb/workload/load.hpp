// Synthetic load generation for the motivation experiments (§1-2).
//
// The prior-work claims this paper builds on (throughput doubled or tripled
// by ITB routing) came from uniform random traffic on irregular networks.
// LoadRunner reproduces that methodology: every host generates fixed-size
// messages with exponential inter-arrival times at a given offered load,
// destinations drawn by a configurable pattern; accepted throughput and
// latency are measured over a measurement window after a warm-up.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "itb/gm/port.hpp"
#include "itb/sim/rng.hpp"
#include "itb/sim/stats.hpp"
#include "itb/telemetry/histogram.hpp"

namespace itb::workload {

enum class Pattern : std::uint8_t {
  kUniform,      // destination uniform over all other hosts
  kHotspot,      // a fraction of traffic targets host 0
  kBitReversal,  // destination = bit-reversed source (permutation)
};

const char* to_string(Pattern p);

struct LoadConfig {
  std::size_t message_bytes = 512;
  /// Offered load per host in messages/second.
  double rate_msgs_per_s = 1e4;
  Pattern pattern = Pattern::kUniform;
  double hotspot_fraction = 0.3;  // kHotspot only
  sim::Duration warmup = 2 * sim::kMs;
  sim::Duration measure = 10 * sim::kMs;
  std::uint64_t seed = 1;
};

struct LoadResult {
  /// Messages delivered per second per host during the window.
  double accepted_msgs_per_s_per_host = 0;
  /// Accepted bytes/s summed over hosts.
  double accepted_bytes_per_s = 0;
  /// Message latency stats (ns), send-call to delivery.
  double latency_mean_ns = 0;
  double latency_p50_ns = 0;
  double latency_p95_ns = 0;
  double latency_p99_ns = 0;
  double latency_p999_ns = 0;
  /// Full latency distribution over the measurement window.
  telemetry::LatencyHistogram latency_hist;
  std::uint64_t messages_delivered = 0;
  std::uint64_t sends_refused = 0;  // token exhaustion (backpressure signal)
  std::uint64_t retransmissions = 0;
};

/// Drive all `ports` with the configured load on a shared queue.
/// The caller owns the ports and the network underneath.
LoadResult run_load(sim::EventQueue& queue, std::vector<gm::GmPort*> ports,
                    const LoadConfig& config);

}  // namespace itb::workload
