#include "itb/workload/load.hpp"

#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace itb::workload {

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::kUniform: return "uniform";
    case Pattern::kHotspot: return "hotspot";
    case Pattern::kBitReversal: return "bit-reversal";
  }
  return "?";
}

namespace {

std::uint16_t bit_reverse(std::uint16_t v, unsigned bits) {
  std::uint16_t out = 0;
  for (unsigned i = 0; i < bits; ++i)
    if (v & (1u << i)) out |= 1u << (bits - 1 - i);
  return out;
}

unsigned bits_for(std::size_t n) {
  unsigned b = 0;
  while ((1u << b) < n) ++b;
  return b;
}

}  // namespace

LoadResult run_load(sim::EventQueue& queue, std::vector<gm::GmPort*> ports,
                    const LoadConfig& config) {
  if (ports.size() < 2) throw std::invalid_argument("need at least two ports");
  const auto n = ports.size();
  const double mean_gap_ns = 1e9 / config.rate_msgs_per_s;
  const sim::Time t0 = queue.now();
  const sim::Time measure_start = t0 + config.warmup;
  const sim::Time measure_end = measure_start + config.measure;

  LoadResult result;
  sim::RunningStats latency;
  std::uint64_t base_retransmissions = 0;
  for (auto* p : ports) base_retransmissions += p->stats().retransmissions;

  // Delivery timestamps: the message payload carries its send time in the
  // first 8 bytes (messages are at least that large in every config used).
  if (config.message_bytes < 8)
    throw std::invalid_argument("message_bytes must be >= 8");
  for (std::size_t i = 0; i < n; ++i) {
    ports[i]->set_receive_handler(
        [&, measure_start, measure_end](sim::Time t, std::uint16_t,
                                        packet::Bytes msg) {
          sim::Time sent = 0;
          for (int b = 0; b < 8; ++b)
            sent = (sent << 8) | msg[static_cast<std::size_t>(b)];
          if (sent >= measure_start && t <= measure_end) {
            ++result.messages_delivered;
            latency.add(static_cast<double>(t - sent));
            result.latency_hist.add(static_cast<double>(t - sent));
          }
        });
  }

  // One generator per host, recursive exponential arrivals. Streams are
  // counter-style — a pure function of (seed, host) — so host k's arrival
  // sequence is independent of how many hosts exist or which thread builds
  // the cluster, keeping every sweep --jobs-invariant by construction.
  struct Generator {
    sim::Rng rng{0};
  };
  std::vector<Generator> gens(n);
  for (std::size_t i = 0; i < n; ++i)
    gens[i].rng = sim::Rng::stream(config.seed, i);

  const unsigned rbits = bits_for(n);
  std::function<void(std::size_t)> arm = [&](std::size_t src) {
    const auto gap = static_cast<sim::Duration>(
        gens[src].rng.next_exponential(mean_gap_ns));
    queue.schedule_in(std::max<sim::Duration>(gap, 1), [&, src] {
      if (queue.now() > measure_end) return;  // stop generating
      // Pick a destination.
      std::uint16_t dst = 0;
      switch (config.pattern) {
        case Pattern::kHotspot:
          if (src != 0 && gens[src].rng.next_bool(config.hotspot_fraction)) {
            dst = 0;
            break;
          }
          [[fallthrough]];
        case Pattern::kUniform:
          do {
            dst = static_cast<std::uint16_t>(gens[src].rng.next_below(n));
          } while (dst == src);
          break;
        case Pattern::kBitReversal:
          dst = bit_reverse(static_cast<std::uint16_t>(src), rbits);
          if (dst >= n || dst == src)
            dst = static_cast<std::uint16_t>((src + 1) % n);
          break;
      }
      packet::Bytes msg(config.message_bytes, 0);
      const sim::Time now = queue.now();
      for (int b = 0; b < 8; ++b)
        msg[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(now >> (8 * (7 - b)));
      if (!ports[src]->send(dst, std::move(msg))) ++result.sends_refused;
      arm(src);
    });
  };
  for (std::size_t i = 0; i < n; ++i) arm(i);

  queue.run(measure_end + config.warmup);  // cool-down drains stragglers

  const double window_s = static_cast<double>(config.measure) / 1e9;
  result.accepted_msgs_per_s_per_host =
      static_cast<double>(result.messages_delivered) / window_s /
      static_cast<double>(n);
  result.accepted_bytes_per_s =
      static_cast<double>(result.messages_delivered) *
      static_cast<double>(config.message_bytes) / window_s;
  result.latency_mean_ns = latency.mean();
  result.latency_p50_ns = result.latency_hist.percentile(50);
  result.latency_p95_ns = result.latency_hist.percentile(95);
  result.latency_p99_ns = result.latency_hist.percentile(99);
  result.latency_p999_ns = result.latency_hist.percentile(99.9);
  for (auto* p : ports) result.retransmissions += p->stats().retransmissions;
  result.retransmissions -= base_retransmissions;
  return result;
}

}  // namespace itb::workload
