#include "itb/workload/pingpong.hpp"

#include <stdexcept>

namespace itb::workload {

namespace {

AllsizeRow run_one(sim::EventQueue& queue, gm::GmPort& a, gm::GmPort& b,
                   std::size_t size, int iterations,
                   telemetry::Sampler* sampler) {
  sim::RunningStats stats;
  AllsizeRow row;
  row.size = size;

  // B echoes every message back to its source.
  b.set_receive_handler([&b](sim::Time, std::uint16_t src,
                             packet::Bytes message) {
    if (!b.send(src, std::move(message)))
      throw std::logic_error("pingpong: echo side out of send tokens");
  });

  for (int it = 0; it < iterations; ++it) {
    bool done = false;
    sim::Time reply_at = 0;
    a.set_receive_handler(
        [&](sim::Time t, std::uint16_t, packet::Bytes) {
          reply_at = t;
          done = true;
        });
    if (sampler) sampler->resume();  // draining the queue parks it
    const sim::Time start = queue.now();
    if (!a.send(b.host(), packet::Bytes(size, 0xA5)))
      throw std::logic_error("pingpong: out of send tokens");
    queue.run();  // drain: unloaded network between iterations
    if (!done) throw std::logic_error("pingpong: reply never arrived");
    const double half_rtt = static_cast<double>(reply_at - start) / 2.0;
    stats.add(half_rtt);
    row.hist.add(half_rtt);
  }

  row.half_rtt_ns = stats.mean();
  row.min_ns = stats.min();
  row.max_ns = stats.max();
  row.stddev_ns = stats.stddev();
  row.p50_ns = row.hist.percentile(50);
  row.p95_ns = row.hist.percentile(95);
  row.p99_ns = row.hist.percentile(99);
  return row;
}

}  // namespace

AllsizeRow run_pingpong(sim::EventQueue& queue, gm::GmPort& a, gm::GmPort& b,
                        std::size_t size, int iterations) {
  return run_one(queue, a, b, size, iterations, nullptr);
}

std::vector<AllsizeRow> run_allsize(sim::EventQueue& queue, gm::GmPort& a,
                                    gm::GmPort& b, const AllsizeConfig& config) {
  std::vector<AllsizeRow> rows;
  rows.reserve(config.sizes.size());
  for (auto size : config.sizes)
    rows.push_back(
        run_one(queue, a, b, size, config.iterations, config.sampler));
  return rows;
}

}  // namespace itb::workload
