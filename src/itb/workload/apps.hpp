// Distributed-application kernels over GM.
//
// The paper's stated next step (§6) is "analyzing the impact of using ITBs
// in the execution time of distributed applications". These kernels are the
// classic communication skeletons of parallel codes, written against the
// GmPort API; an experiment runs one to completion and reports its
// execution time (makespan) under a routing policy.
#pragma once

#include <cstdint>
#include <vector>

#include "itb/gm/port.hpp"

namespace itb::workload {

struct AppResult {
  sim::Duration makespan = 0;       // first send() to last delivery
  std::uint64_t messages = 0;       // application messages exchanged
  std::uint64_t bytes = 0;          // application payload moved
};

/// All-to-all personalized exchange: every host sends one `bytes`-long
/// message to every other host, `rounds` times. The densest collective —
/// exactly the traffic that saturates a spanning-tree root.
AppResult run_all_to_all(sim::EventQueue& queue, std::vector<gm::GmPort*> ports,
                         std::size_t bytes, int rounds = 1);

/// Ring exchange: host i sends to host (i+1) mod n each round and waits
/// for the message from (i-1) before starting the next round — the
/// communication skeleton of pipelined stencils and ring all-reduce.
AppResult run_ring_exchange(sim::EventQueue& queue,
                            std::vector<gm::GmPort*> ports, std::size_t bytes,
                            int rounds);

/// Master/worker: host 0 scatters one task to every worker, each worker
/// replies with a result, repeated `rounds` times — hotspot traffic on the
/// master's switch.
AppResult run_master_worker(sim::EventQueue& queue,
                            std::vector<gm::GmPort*> ports,
                            std::size_t task_bytes, std::size_t result_bytes,
                            int rounds);

}  // namespace itb::workload
