#include "itb/workload/apps.hpp"

#include <deque>
#include <memory>
#include <stdexcept>

namespace itb::workload {
namespace {

/// Token-aware sender: queues destinations and pushes whenever a send token
/// returns, so kernels can express more outstanding traffic than GM allows.
class Feeder {
 public:
  explicit Feeder(gm::GmPort& port) : port_(port) {}

  void enqueue(std::uint16_t dst, packet::Bytes message) {
    queue_.emplace_back(dst, std::move(message));
    pump();
  }

  void pump() {
    // send() takes the message by value, so probe for a token first —
    // a refused call would already have consumed the buffer.
    while (!queue_.empty() && port_.tokens_available() > 0) {
      auto& [dst, msg] = queue_.front();
      if (!port_.send(dst, std::move(msg), [this](sim::Time) { pump(); }))
        throw std::logic_error("send refused despite an available token");
      queue_.pop_front();
    }
  }

 private:
  gm::GmPort& port_;
  std::deque<std::pair<std::uint16_t, packet::Bytes>> queue_;
};

}  // namespace

AppResult run_all_to_all(sim::EventQueue& queue, std::vector<gm::GmPort*> ports,
                         std::size_t bytes, int rounds) {
  const auto n = ports.size();
  if (n < 2) throw std::invalid_argument("need at least two ports");
  AppResult result;
  const sim::Time start = queue.now();
  // Makespan ends at the last delivery, not queue drain: background events
  // (a telemetry sampler tick, trailing acks) must not pad it.
  sim::Time last = start;

  for (auto* p : ports)
    p->set_receive_handler([&result, &last](sim::Time t, std::uint16_t,
                                            packet::Bytes msg) {
      ++result.messages;
      result.bytes += msg.size();
      last = t;
    });

  std::vector<std::unique_ptr<Feeder>> feeders;
  feeders.reserve(n);
  for (auto* p : ports) feeders.push_back(std::make_unique<Feeder>(*p));
  for (int r = 0; r < rounds; ++r)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t d = 0; d < n; ++d) {
        if (d == i) continue;
        feeders[i]->enqueue(static_cast<std::uint16_t>(d),
                            packet::Bytes(bytes, static_cast<std::uint8_t>(r)));
      }

  queue.run();
  result.makespan = last - start;
  if (result.messages !=
      static_cast<std::uint64_t>(rounds) * n * (n - 1))
    throw std::logic_error("all-to-all lost messages");
  return result;
}

AppResult run_ring_exchange(sim::EventQueue& queue,
                            std::vector<gm::GmPort*> ports, std::size_t bytes,
                            int rounds) {
  const auto n = ports.size();
  if (n < 2) throw std::invalid_argument("need at least two ports");
  AppResult result;
  const sim::Time start = queue.now();
  sim::Time last = start;

  std::vector<std::unique_ptr<Feeder>> feeders;
  feeders.reserve(n);
  for (auto* p : ports) feeders.push_back(std::make_unique<Feeder>(*p));

  // Receiving the round-r message from the left neighbour releases the
  // round-(r+1) send to the right neighbour.
  for (std::size_t i = 0; i < n; ++i) {
    ports[i]->set_receive_handler(
        [&, i](sim::Time t, std::uint16_t, packet::Bytes msg) {
          ++result.messages;
          result.bytes += msg.size();
          last = t;
          const int round = msg[0];
          if (round + 1 < rounds) {
            packet::Bytes next(msg.size(),
                               static_cast<std::uint8_t>(round + 1));
            feeders[i]->enqueue(static_cast<std::uint16_t>((i + 1) % n),
                                std::move(next));
          }
        });
  }
  for (std::size_t i = 0; i < n; ++i)
    feeders[i]->enqueue(static_cast<std::uint16_t>((i + 1) % n),
                        packet::Bytes(std::max<std::size_t>(bytes, 1), 0));

  queue.run();
  result.makespan = last - start;
  if (result.messages != static_cast<std::uint64_t>(rounds) * n)
    throw std::logic_error("ring exchange lost messages");
  return result;
}

AppResult run_master_worker(sim::EventQueue& queue,
                            std::vector<gm::GmPort*> ports,
                            std::size_t task_bytes, std::size_t result_bytes,
                            int rounds) {
  const auto n = ports.size();
  if (n < 2) throw std::invalid_argument("need a master and a worker");
  AppResult result;
  const sim::Time start = queue.now();
  sim::Time last = start;

  std::vector<std::unique_ptr<Feeder>> feeders;
  feeders.reserve(n);
  for (auto* p : ports) feeders.push_back(std::make_unique<Feeder>(*p));

  // Workers answer every task with a result.
  for (std::size_t w = 1; w < n; ++w) {
    ports[w]->set_receive_handler(
        [&, w](sim::Time t, std::uint16_t master, packet::Bytes msg) {
          ++result.messages;
          result.bytes += msg.size();
          last = t;
          packet::Bytes reply(std::max<std::size_t>(result_bytes, 1), msg[0]);
          feeders[w]->enqueue(master, std::move(reply));
        });
  }

  // The master scatters a round, waits for all replies, then repeats.
  auto scatter = std::make_shared<std::function<void(int)>>();
  auto replies = std::make_shared<std::size_t>(0);
  ports[0]->set_receive_handler(
      [&, scatter, replies](sim::Time t, std::uint16_t, packet::Bytes msg) {
        ++result.messages;
        result.bytes += msg.size();
        last = t;
        if (++*replies == n - 1) {
          *replies = 0;
          const int round = msg[0];
          if (round + 1 < rounds) (*scatter)(round + 1);
        }
      });
  *scatter = [&, task_bytes](int round) {
    for (std::size_t w = 1; w < n; ++w)
      feeders[0]->enqueue(static_cast<std::uint16_t>(w),
                          packet::Bytes(std::max<std::size_t>(task_bytes, 1),
                                        static_cast<std::uint8_t>(round)));
  };
  (*scatter)(0);

  queue.run();
  result.makespan = last - start;
  if (result.messages != static_cast<std::uint64_t>(rounds) * 2 * (n - 1))
    throw std::logic_error("master/worker lost messages");
  return result;
}

}  // namespace itb::workload
