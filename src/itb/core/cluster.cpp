#include "itb/core/cluster.hpp"

#include <stdexcept>

namespace itb::core {

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  config_.topology.validate();
  const auto hosts = config_.topology.host_count();

  // Resolve the deadlock engine: an explicit spec wins (and dictates the
  // routing policy); otherwise derive the single-lane engine matching the
  // configured policy.
  if (config_.engine) {
    engine_spec_ = *config_.engine;
  } else {
    switch (config_.policy) {
      case routing::Policy::kUpDown:
        engine_spec_ = engine::EngineSpec{engine::EngineKind::kUpDown, 1};
        break;
      case routing::Policy::kItb:
        engine_spec_ = engine::EngineSpec{engine::EngineKind::kItb, 1};
        break;
      case routing::Policy::kVcEscape:
        engine_spec_ = engine::EngineSpec{engine::EngineKind::kVcEscape, 2};
        break;
    }
  }
  engine_ = engine::make_engine(engine_spec_);
  config_.policy = engine_->policy();

  network_ = std::make_unique<net::Network>(config_.topology,
                                            config_.net_timing, queue_, tracer_);
  if (engine_->lane_count() > 1) network_->set_lane_policy(engine_.get());
  if (config_.flight.enabled) {
    flight_ = std::make_unique<flight::FlightRecorder>(config_.flight);
    network_->set_flight_recorder(flight_.get());
    tracer_.emit(0, sim::TraceCategory::kFlight, [&] {
      return "flight recorder armed, ring capacity " +
             std::to_string(flight_->capacity());
    });
  }
  for (std::uint16_t h = 0; h < hosts; ++h) {
    pci_.push_back(std::make_unique<host::PciBus>(queue_, config_.pci_timing));
    nics_.push_back(std::make_unique<nic::Nic>(
        queue_, tracer_, *network_, *pci_.back(), h, config_.lanai_timing,
        config_.mcp_options));
  }

  if (config_.manual_routes) {
    const auto& routes = *config_.manual_routes;
    if (routes.size() != hosts)
      throw std::invalid_argument("manual_routes must cover every source");
    for (std::uint16_t s = 0; s < hosts; ++s)
      for (std::uint16_t d = 0; d < hosts; ++d)
        if (s != d && !routes[s][d].empty())
          nics_[s]->set_route(d, routes[s][d]);
    // Hand-built routes were (by contract) planned against the root-0
    // orientation of the true topology.
    engine_->bind(routing::UpDown(config_.topology, 0), config_.topology, {});
  } else {
    // Run the mapper: discovery walk + route computation + table download.
    auto result = mapper::run(config_.topology, config_.policy,
                              config_.mapper_root_host, config_.itb_selection,
                              /*allow_partial=*/false, config_.route_solve_jobs,
                              engine_spec_.lanes);
    report_ = std::move(result.report);
    table_ = std::move(result.table);
    // Bind the engine to the orientation the solve used (discovered
    // coordinates, translated to true fabric indices via switch_of).
    engine_->bind(routing::UpDown(report_->discovered, 0), config_.topology,
                  report_->switch_of);
    for (auto& nic : nics_) nic->load_routes(*table_);
  }

  // Host software stacks behind a per-type demux: GM claims GM and mapping
  // packets, the IP driver claims kIp — the host-side mirror of the MCP's
  // own type dispatch (§4).
  for (std::uint16_t h = 0; h < hosts; ++h) {
    gm_ports_.push_back(std::make_unique<gm::GmPort>(queue_, tracer_, *nics_[h],
                                                     config_.gm_config));
    muxes_.push_back(std::make_unique<nic::NicMux>(*nics_[h]));
    muxes_.back()->route(packet::PacketType::kGm, gm_ports_.back().get());
    muxes_.back()->route(packet::PacketType::kMapping, gm_ports_.back().get());
    ip_stacks_.push_back(std::make_unique<ip::IpStack>(
        queue_, *nics_[h], *muxes_.back(), ip::IpConfig{}));
  }

  // Fault injection + remap-and-recover. The injector is only built when
  // the config actually schedules faults, keeping the faithful-wire hot
  // path free of hook checks.
  if (config_.fault_plan.active() || !config_.fault_schedule.empty()) {
    fault_injector_ = std::make_unique<fault::FaultInjector>(
        queue_, tracer_, *network_, config_.fault_plan, config_.fault_schedule);
    if (config_.auto_remap && !config_.manual_routes &&
        config_.fault_schedule.has_topology_faults()) {
      std::vector<nic::Nic*> nic_ptrs;
      nic_ptrs.reserve(nics_.size());
      for (auto& nic : nics_) nic_ptrs.push_back(nic.get());
      fault::RecoveryManager::Config rc;
      rc.policy = config_.policy;
      rc.selection = config_.itb_selection;
      rc.preferred_root_host = config_.mapper_root_host;
      rc.remap_delay = config_.remap_delay;
      rc.route_jobs = config_.route_solve_jobs;
      rc.vc_lanes = engine_spec_.lanes;
      // Recovery solves over the TRUE fabric (usability-masked), so the
      // re-bind needs no switch translation.
      rc.on_orientation = [this](const routing::UpDown& ud) {
        engine_->bind(ud, config_.topology, {});
      };
      rc.tuning = config_.recovery;
      recovery_ = std::make_unique<fault::RecoveryManager>(
          queue_, tracer_, config_.topology, *fault_injector_,
          std::move(nic_ptrs), rc);
    }
  }

  if (config_.watchdog.enabled) {
    std::vector<nic::Nic*> nic_ptrs;
    nic_ptrs.reserve(nics_.size());
    for (auto& nic : nics_) nic_ptrs.push_back(nic.get());
    watchdog_ = std::make_unique<health::LivenessWatchdog>(
        queue_, tracer_, *network_, std::move(nic_ptrs), config_.watchdog);
  }

  wire_telemetry();
}

void Cluster::wire_telemetry() {
  telemetry_ = std::make_unique<telemetry::Telemetry>(
      queue_, tracer_, config_.telemetry_sample_period);
  auto& reg = telemetry_->registry();
  network_->register_metrics(reg);
  for (auto& nic : nics_) nic->register_metrics(reg);
  for (auto& port : gm_ports_) port->register_metrics(reg);
  for (auto& ip : ip_stacks_) ip->register_metrics(reg);
  if (fault_injector_) fault_injector_->register_metrics(reg);
  if (recovery_) recovery_->register_metrics(reg);
  if (watchdog_) watchdog_->register_metrics(reg);
  if (flight_) flight_->register_metrics(reg);

  // Default sampler probes (see the telemetry() doc comment in the header).
  auto& s = telemetry_->sampler();
  using Mode = telemetry::Sampler::Mode;
  const auto channels = config_.topology.link_count() * 2;
  for (std::size_t c = 0; c < channels; ++c)
    s.add_probe("channel_utilization",
                telemetry::Labels{.host = -1, .channel = static_cast<int>(c)},
                Mode::kRate, [net = network_.get(), c] {
                  return static_cast<double>(net->channel_busy_ns()[c]);
                });
  // Per-lane busy fractions when a multi-lane engine is active (channel
  // label = channel * lanes + lane, matching the network's slot indexing).
  if (network_->lane_count() > 1)
    for (std::size_t slot = 0; slot < channels * network_->lane_count(); ++slot)
      s.add_probe(
          "lane_utilization",
          telemetry::Labels{.host = -1, .channel = static_cast<int>(slot)},
          Mode::kRate, [net = network_.get(), slot] {
            return static_cast<double>(net->lane_busy_ns()[slot]);
          });
  for (std::uint16_t h = 0; h < host_count(); ++h) {
    const telemetry::Labels labels{.host = h, .channel = -1};
    auto* nic = nics_[h].get();
    auto* port = gm_ports_[h].get();
    s.add_probe("itb_pending_depth", labels, Mode::kLevel, [nic] {
      return static_cast<double>(nic->itb_pending_depth());
    });
    s.add_probe("send_dma_utilization", labels, Mode::kRate, [nic] {
      return static_cast<double>(nic->send_dma_busy_ns());
    });
    s.add_probe("rx_buffer_utilization", labels, Mode::kRate, [nic] {
      return static_cast<double>(nic->rx_busy_ns());
    });
    s.add_probe("gm_tokens_in_use", labels, Mode::kLevel, [port] {
      return static_cast<double>(port->tokens_in_use());
    });
    s.add_probe(
        "gm_retransmit_per_s", labels, Mode::kRate,
        [port] { return static_cast<double>(port->stats().retransmissions); },
        /*scale=*/1e9);
  }
}

bool Cluster::routes_deadlock_free() const {
  if (!table_ || !report_) return true;  // manual routes: caller's business
  // The table stores discovered-coordinate channels, while the live engine
  // is bound in true coordinates — so check with a throwaway engine bound
  // over the discovered topology itself. Single-lane engines reduce to the
  // classical CDG either way.
  auto check = engine::make_engine(engine_spec_);
  check->bind(routing::UpDown(report_->discovered, 0), report_->discovered, {});
  return engine::verify_deadlock_free(*check, *table_, report_->discovered);
}

bool Cluster::routes_buffer_wedge_free() const {
  if (!table_ || !report_) return true;  // manual routes: caller's business
  routing::DependencyGraph graph(report_->discovered);
  graph.add_table_buffered(*table_, report_->discovered);
  return !graph.cycle_through_buffer();
}

std::vector<gm::GmPort*> Cluster::ports() {
  std::vector<gm::GmPort*> out;
  out.reserve(gm_ports_.size());
  for (auto& p : gm_ports_) out.push_back(p.get());
  return out;
}

}  // namespace itb::core
