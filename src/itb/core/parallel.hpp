// Parallel sweep runner — compatibility re-export.
//
// The implementation moved to itb/sim/parallel.hpp so the routing layer can
// fan per-source route solves across threads without a dependency cycle
// (core links routing via the mapper). Every figure bench and the
// determinism test suite were written against itb::core; this header keeps
// those spellings working.
#pragma once

#include "itb/sim/parallel.hpp"

namespace itb::core {

using sim::ParallelRunner;
using sim::jobs_flag;
using sim::run_sweep_parallel;

}  // namespace itb::core
