// Parallel sweep runner.
//
// Every figure bench is a sweep of independent, deterministic simulations:
// one Cluster per {policy, rate, configuration, seed} point, no state
// shared between points. ParallelRunner fans those points across a small
// thread pool; run_sweep_parallel() is the typed helper that collects one
// result per point, in point order.
//
// Determinism contract: a sweep point must build everything it touches
// (topology, cluster, RNG streams) from its own index/seed and return its
// results by value. Under that contract the per-point results are
// bit-identical for any job count — threads change only wall-clock, never
// numbers — and `--jobs 1` (which runs inline on the calling thread, no
// pool at all) reproduces the serial program exactly. The determinism test
// suite asserts this.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace itb::core {

class ParallelRunner {
 public:
  /// `jobs` = 0 picks std::thread::hardware_concurrency().
  explicit ParallelRunner(unsigned jobs = 0);

  unsigned jobs() const { return jobs_; }

  /// Run body(0) .. body(count - 1), each exactly once, across up to
  /// jobs() threads; returns when all have finished. jobs() == 1 (or
  /// count == 1) runs inline on the calling thread — no threads are
  /// created, so a serial run is reproduced exactly. If any body throws,
  /// the first exception (in completion order) is rethrown after every
  /// started body has finished; remaining unstarted indices are skipped.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& body) const;

 private:
  unsigned jobs_;
};

/// Map `point` over [0, count) with `jobs` threads (0 = hardware
/// concurrency) and return the results in point order.
template <typename Fn>
auto run_sweep_parallel(std::size_t count, Fn&& point, unsigned jobs = 0)
    -> std::vector<decltype(point(std::size_t{}))> {
  using Result = decltype(point(std::size_t{}));
  std::vector<std::optional<Result>> slots(count);
  ParallelRunner(jobs).run_indexed(
      count, [&](std::size_t i) { slots[i].emplace(point(i)); });
  std::vector<Result> out;
  out.reserve(count);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Parse `--jobs N` or `--jobs=N` out of argv; nullopt when absent (bench
/// mains default that to 0 = hardware concurrency). Throws
/// std::invalid_argument on a missing or non-numeric value.
std::optional<unsigned> jobs_flag(int argc, char** argv);

}  // namespace itb::core
