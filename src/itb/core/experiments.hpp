// Preset clusters for the paper's experiments (§5, Figs. 6-8).
//
// The evaluation testbed (Fig. 6) is topo::make_paper_testbed(). Both tests
// run gm_allsize ping-pong between host1 (h0) and host2 (h2) over
// hand-built routes — exactly how the authors controlled switch-traversal
// counts and port kinds:
//
// Fig. 7 (code overhead) — up*/down* routes both ways, packets traversing
//   2.5 switches on average: forward h0->h2 = [5, 7, 4] (s0, s1, loop back
//   into s1: 3 traversals), reverse h2->h0 = [5, 0] (2 traversals). The two
//   clusters differ only in MCP build (original vs ITB-capable).
//
// Fig. 8 (per-ITB overhead) — both paths cross 5 switches and the same
//   port kinds (one LAN port each: host1's own link):
//   * UD:      h0->h2 = [5, 7, 6, 6, 4] — trunk A to s1, the loopback
//              cable ("a loop in switch 2"), trunk B back to s0, trunk B
//              forward again, out to h2.
//   * UD+ITB:  h0->h2 = [5, 6, 4] then ITB at h1, then [6, 4] — trunk A,
//              trunk B back, eject at the in-transit host, re-inject over
//              trunk B forward, out to h2. No directed channel is shared
//              between the two wormhole segments, so cut-through
//              re-injection never self-blocks.
//   The reverse (pong) route is the plain [5, 0] in both clusters, so the
//   half-round-trip difference isolates exactly one ITB crossing; the
//   paper therefore multiplies the difference by two (§5), and so do the
//   benches.
#pragma once

#include <memory>

#include "itb/core/cluster.hpp"

namespace itb::core {

/// Testbed host roles (see topo::make_paper_testbed).
inline constexpr std::uint16_t kHost1 = 0;
inline constexpr std::uint16_t kInTransit = 1;
inline constexpr std::uint16_t kHost2 = 2;

/// Fig. 7 cluster: up*/down* routes; `modified_mcp` selects the ITB-capable
/// MCP (true) or the original GM MCP (false). `flight` arms the flight
/// recorder (benches pass it through from --flight).
std::unique_ptr<Cluster> make_fig7_cluster(
    bool modified_mcp, const flight::RecorderConfig& flight = {});

/// Fig. 8 cluster: ITB-capable MCP on every NIC; `itb_path` selects the
/// UD+ITB forward route (true) or the 5-traversal UD route (false).
/// `options` lets the ablation benches tweak the MCP; `watchdog` arms the
/// liveness watchdog and `flight` the flight recorder (benches pass them
/// through from --watchdog / --flight).
std::unique_ptr<Cluster> make_fig8_cluster(
    bool itb_path, const nic::McpOptions& options = {},
    const nic::LanaiTiming& lanai = {},
    const health::WatchdogConfig& watchdog = {},
    const flight::RecorderConfig& flight = {});

}  // namespace itb::core
