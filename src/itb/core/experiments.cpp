#include "itb/core/experiments.hpp"

namespace itb::core {
namespace {

using Routes = std::vector<std::vector<std::vector<packet::Route>>>;

/// Empty 3x3 manual-route matrix for the testbed.
Routes empty_routes() { return Routes(3, std::vector<std::vector<packet::Route>>(3)); }

/// Routes shared by every testbed experiment: the plain reverse path and
/// the in-transit host's service paths (used by GM acks).
void fill_common(Routes& r) {
  r[kHost2][kHost1] = {{5, 0}};      // s1 -> s0 -> h0
  r[kHost1][kInTransit] = {{4}};     // s0 -> h1
  r[kInTransit][kHost1] = {{0}};     // s0 -> h0
  r[kInTransit][kHost2] = {{5, 4}};  // s0 -> s1 -> h2
  r[kHost2][kInTransit] = {{5, 4}};  // s1 -> s0 -> h1
}

std::unique_ptr<Cluster> make_testbed_cluster(
    Routes routes, const nic::McpOptions& options,
    const nic::LanaiTiming& lanai,
    const health::WatchdogConfig& watchdog = {},
    const flight::RecorderConfig& flight = {}) {
  ClusterConfig cfg;
  cfg.topology = topo::make_paper_testbed();
  cfg.mcp_options = options;
  cfg.lanai_timing = lanai;
  cfg.manual_routes = std::move(routes);
  cfg.watchdog = watchdog;
  cfg.flight = flight;
  return std::make_unique<Cluster>(std::move(cfg));
}

}  // namespace

std::unique_ptr<Cluster> make_fig7_cluster(bool modified_mcp,
                                           const flight::RecorderConfig& flight) {
  Routes r = empty_routes();
  fill_common(r);
  // 3 traversals forward (s0, s1, loop back into s1), 2 reverse: the
  // paper's "packets traversing 2.5 switches".
  r[kHost1][kHost2] = {{5, 7, 4}};
  nic::McpOptions options;
  options.itb_support = modified_mcp;
  return make_testbed_cluster(std::move(r), options, {}, {}, flight);
}

std::unique_ptr<Cluster> make_fig8_cluster(bool itb_path,
                                           const nic::McpOptions& options,
                                           const nic::LanaiTiming& lanai,
                                           const health::WatchdogConfig& watchdog,
                                           const flight::RecorderConfig& flight) {
  Routes r = empty_routes();
  fill_common(r);
  if (itb_path) {
    r[kHost1][kHost2] = {{5, 6, 4}, {6, 4}};  // ITB at h1; 5 traversals
  } else {
    r[kHost1][kHost2] = {{5, 7, 6, 6, 4}};    // loop in switch 2; 5 traversals
  }
  return make_testbed_cluster(std::move(r), options, lanai, watchdog, flight);
}

}  // namespace itb::core
