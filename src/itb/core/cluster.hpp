// Cluster: the top-level assembly a user of this library works with.
//
// A Cluster owns one fully wired COW: topology, up*/down* orientation,
// route tables (computed by the mapper), the wormhole network, one PCI bus
// + NIC + GM port per host, and the shared event queue. It is the
// public-API entry point used by the examples and every bench binary.
//
// Typical use:
//   core::ClusterConfig cfg;
//   cfg.topology = topo::make_fig1_network();
//   cfg.policy = routing::Policy::kItb;
//   core::Cluster cluster(cfg);
//   cluster.port(0).send(5, message);
//   cluster.run();
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "itb/engine/engine.hpp"
#include "itb/fault/fault.hpp"
#include "itb/fault/injector.hpp"
#include "itb/fault/recovery.hpp"
#include "itb/flight/recorder.hpp"
#include "itb/gm/port.hpp"
#include "itb/health/watchdog.hpp"
#include "itb/host/pci.hpp"
#include "itb/ip/stack.hpp"
#include "itb/mapper/mapper.hpp"
#include "itb/nic/mux.hpp"
#include "itb/net/network.hpp"
#include "itb/nic/nic.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/sim/event_queue.hpp"
#include "itb/sim/trace.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/topo/builders.hpp"

namespace itb::core {

struct ClusterConfig {
  topo::Topology topology;
  routing::Policy policy = routing::Policy::kUpDown;
  /// Deadlock-freedom engine. Unset = derived from `policy` (kUpDown and
  /// kItb map to their single-lane engines, kVcEscape to a 2-lane escape
  /// engine). When set it WINS: `policy` is overridden with the engine's
  /// required routing policy so the table solve, the lane arbitration and
  /// the recovery re-solves can never disagree.
  std::optional<engine::EngineSpec> engine;
  net::NetTiming net_timing;
  nic::LanaiTiming lanai_timing;
  nic::McpOptions mcp_options;  // defaults to the ITB-capable MCP
  host::PciTiming pci_timing;
  gm::GmConfig gm_config;
  /// Probabilistic last-hop faults for reliability tests (defaults to a
  /// faithful wire).
  fault::FaultPlan fault_plan;
  /// Timed fault windows (link/switch/host down, NIC stalls); empty by
  /// default. Injected deterministically off the event queue.
  fault::FaultSchedule fault_schedule;
  /// Re-run the mapper and hot-swap route tables when a topology-affecting
  /// fault window opens or closes (no effect with manual_routes).
  bool auto_remap = true;
  /// Detection time from the first unabsorbed topology event to the remap
  /// recompute firing (the recompute itself is charged per probe/source —
  /// see RecoveryTuning).
  sim::Duration remap_delay = 500 * sim::kUs;
  /// Incremental recovery engine tuning (scoped re-probe, table patching,
  /// flap quarantine, verify-against-full).
  fault::RecoveryTuning recovery;
  /// Host that runs the mapper.
  std::uint16_t mapper_root_host = 0;
  /// Threads for the mapper's per-source route solves (0 = hardware
  /// concurrency). The table is bit-identical for any value; the default
  /// stays serial so clusters built inside parallel sweep workers do not
  /// oversubscribe. The scale bench raises it for thousand-host fabrics.
  unsigned route_solve_jobs = 1;
  /// Which host on a switch takes in-transit duty (kSpread balances the
  /// forwarding load across a switch's hosts).
  routing::ItbHostSelection itb_selection =
      routing::ItbHostSelection::kLowestIndex;
  /// When set, skip the mapper and install these exact route segments on
  /// every NIC instead (used by the Fig. 7/8 benches, which hand-build
  /// their measurement paths). Indexed [src][dst].
  std::optional<std::vector<std::vector<std::vector<packet::Route>>>>
      manual_routes;
  /// Tick period of the telemetry sampler (armed on demand; idle clusters
  /// pay nothing).
  sim::Duration telemetry_sample_period = 100 * sim::kUs;
  /// Liveness watchdog (DESIGN.md §6f): progress sentinel + wait-graph
  /// diagnosis + graceful degradation. Disabled by default; benches enable
  /// it behind --watchdog.
  health::WatchdogConfig watchdog;
  /// Flight recorder (DESIGN.md §6g): packed packet-lifecycle capture.
  /// Disabled by default; benches enable it behind --flight.
  flight::RecorderConfig flight;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::size_t host_count() const { return gm_ports_.size(); }

  sim::EventQueue& queue() { return queue_; }
  sim::Tracer& tracer() { return tracer_; }
  net::Network& network() { return *network_; }

  /// Observability bundle: every layer's counters in one registry plus the
  /// periodic sampler. `telemetry().start_sampling()` arms time-series
  /// collection; `telemetry().write_json(path)` dumps everything.
  /// Default sampler probes (all labelled by host/channel index):
  ///   channel_utilization  — per directed channel, busy fraction per tick
  ///   itb_pending_depth    — per host, ITB packets waiting for send DMA
  ///   send_dma_utilization — per host, send DMA busy fraction
  ///   rx_buffer_utilization— per host, >= 1 receive buffer held fraction
  ///   gm_tokens_in_use     — per host, send tokens outstanding
  ///   gm_retransmit_per_s  — per host, GM retransmissions per second
  telemetry::Telemetry& telemetry() { return *telemetry_; }
  const telemetry::Telemetry& telemetry() const { return *telemetry_; }
  gm::GmPort& port(std::uint16_t host) { return *gm_ports_.at(host); }
  /// Fault injector; nullptr when the config schedules no faults.
  fault::FaultInjector* faults() { return fault_injector_.get(); }
  /// Remap-and-recover manager; nullptr unless auto_remap applies to a
  /// schedule with topology faults.
  fault::RecoveryManager* recovery() { return recovery_.get(); }
  /// Liveness watchdog; nullptr unless config.watchdog.enabled.
  health::LivenessWatchdog* health() { return watchdog_.get(); }
  const health::LivenessWatchdog* health() const { return watchdog_.get(); }
  /// Flight recorder; nullptr unless config.flight.enabled.
  flight::FlightRecorder* flight() { return flight_.get(); }
  const flight::FlightRecorder* flight() const { return flight_.get(); }
  ip::IpStack& ip(std::uint16_t host) { return *ip_stacks_.at(host); }
  nic::Nic& nic(std::uint16_t host) { return *nics_.at(host); }
  const topo::Topology& topology() const { return config_.topology; }
  /// The active deadlock-freedom engine (always present; single-lane for
  /// plain up*/down* and ITB clusters).
  const engine::DeadlockEngine& deadlock_engine() const { return *engine_; }
  const routing::RouteTable* route_table() const {
    return table_ ? &*table_ : nullptr;
  }
  const mapper::DiscoveryReport* mapper_report() const {
    return report_ ? &*report_ : nullptr;
  }

  /// Run until the event queue drains (or the horizon is reached).
  void run(sim::Time until = INT64_MAX) { queue_.run(until); }

  /// Assert the installed route set is deadlock-free (CDG acyclic).
  bool routes_deadlock_free() const;

  /// Stricter §8 prediction: the buffer-augmented dependency graph (ITB
  /// routes threaded through finite in-transit pools) is acyclic too. A
  /// false here with routes_deadlock_free() true means the route set can
  /// wedge under load unless drop-on-full (or the watchdog) is enabled.
  bool routes_buffer_wedge_free() const;

  std::vector<gm::GmPort*> ports();

 private:
  ClusterConfig config_;
  sim::EventQueue queue_;
  sim::Tracer tracer_;
  // Before network_: every layer records through the network's pointer, so
  // the recorder must outlive the components that feed it.
  std::unique_ptr<flight::FlightRecorder> flight_;
  // Before network_ too: the network arbitrates through the engine's
  // LanePolicy pointer.
  engine::EngineSpec engine_spec_;
  std::unique_ptr<engine::DeadlockEngine> engine_;
  std::unique_ptr<net::Network> network_;
  std::optional<mapper::DiscoveryReport> report_;
  std::optional<routing::RouteTable> table_;
  std::vector<std::unique_ptr<host::PciBus>> pci_;
  std::vector<std::unique_ptr<nic::Nic>> nics_;
  std::vector<std::unique_ptr<gm::GmPort>> gm_ports_;
  std::vector<std::unique_ptr<nic::NicMux>> muxes_;
  std::vector<std::unique_ptr<ip::IpStack>> ip_stacks_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  std::unique_ptr<fault::RecoveryManager> recovery_;
  // Declared after network_/nics_ (it reads both) and destroyed before
  // them; its destructor detaches the network's activity hook.
  std::unique_ptr<health::LivenessWatchdog> watchdog_;
  // Last member: its registry sources and sampler probes point into the
  // components above, so it must be destroyed first.
  std::unique_ptr<telemetry::Telemetry> telemetry_;

  void wire_telemetry();
};

}  // namespace itb::core
