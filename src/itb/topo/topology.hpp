// Network topology substrate.
//
// A COW (cluster of workstations) topology is a bipartite-ish graph of
// switches and hosts joined by full-duplex links. Myrinet switches in the
// paper's testbed are M2FM-SW8 units: 8 ports, 4 of them LAN ports and 4 SAN
// ports; the latency through a switch depends on the port kinds traversed,
// which Figure 8's methodology controls for explicitly.
//
// Topology is pure structure: no timing, no queues. The net/ module builds a
// running network out of it; the routing/ module computes routes over it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace itb::topo {

/// Kind of a graph node.
enum class NodeKind : std::uint8_t { kSwitch, kHost };

/// Port electrical kind; switch fall-through latency depends on it (§5).
enum class PortKind : std::uint8_t { kSan, kLan };

const char* to_string(NodeKind k);
const char* to_string(PortKind k);

/// Identifies a switch or host within one Topology.
struct NodeId {
  NodeKind kind = NodeKind::kSwitch;
  std::uint16_t index = 0;

  friend bool operator==(NodeId, NodeId) = default;
  friend auto operator<=>(NodeId, NodeId) = default;
};

inline NodeId switch_id(std::uint16_t i) { return {NodeKind::kSwitch, i}; }
inline NodeId host_id(std::uint16_t i) { return {NodeKind::kHost, i}; }

std::string to_string(NodeId id);

/// One end of a link: a node and the port it occupies on that node.
/// Hosts always attach through port 0 (a NIC has a single network port).
struct Endpoint {
  NodeId node;
  std::uint8_t port = 0;

  friend bool operator==(Endpoint, Endpoint) = default;
};

/// A full-duplex cable. Direction a->b and b->a are distinct channels for
/// routing/deadlock analysis; `LinkId` + direction names a channel.
struct Link {
  Endpoint a;
  Endpoint b;
  /// Port kind of this link (both ends must match: a LAN cable plugs into
  /// LAN ports on both sides).
  PortKind kind = PortKind::kSan;
};

using LinkId = std::uint32_t;

/// Directed channel: one direction of one link.
struct Channel {
  LinkId link = 0;
  bool forward = true;  // true: a->b, false: b->a

  friend bool operator==(Channel, Channel) = default;
  friend auto operator<=>(Channel, Channel) = default;
};

struct SwitchSpec {
  std::uint8_t ports = 8;
  std::string name;
};

struct HostSpec {
  std::string name;
};

/// Immutable-after-build description of a network.
///
/// Lookups are backed by a per-node incidence index maintained by connect(),
/// so link_at()/peer()/links_of() cost O(node degree), not O(total links) —
/// the difference between the mapper probing a 3-host testbed and an
/// 8192-switch fabric.
class Topology {
 public:
  /// Switch/host indices are 16-bit (NIC SRAM route tables and the GM wire
  /// header address hosts with a std::uint16_t). One id per kind is
  /// reserved as a sentinel, so a topology holds at most 65535 switches and
  /// 65535 hosts; add_switch()/add_host() throw past that instead of
  /// letting the index wrap.
  static constexpr std::size_t kMaxNodesPerKind = 0xFFFF;

  /// Add a switch with `ports` ports; returns its id.
  /// Throws std::invalid_argument past kMaxNodesPerKind switches.
  NodeId add_switch(std::uint8_t ports = 8, std::string name = {});

  /// Add a host; returns its id.
  /// Throws std::invalid_argument past kMaxNodesPerKind hosts.
  NodeId add_host(std::string name = {});

  /// Connect two endpoints with a cable of kind `kind`.
  /// Throws std::invalid_argument on bad ports / double connections.
  LinkId connect(Endpoint a, Endpoint b, PortKind kind = PortKind::kSan);

  /// Convenience: connect switch s1 port p1 to switch s2 port p2.
  LinkId connect_switches(std::uint16_t s1, std::uint8_t p1, std::uint16_t s2,
                          std::uint8_t p2, PortKind kind = PortKind::kSan);

  /// Convenience: connect host h to switch s port p.
  LinkId attach_host(std::uint16_t h, std::uint16_t s, std::uint8_t p,
                     PortKind kind = PortKind::kSan);

  std::size_t switch_count() const { return switches_.size(); }
  std::size_t host_count() const { return hosts_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const SwitchSpec& switch_spec(std::uint16_t i) const { return switches_.at(i); }
  const HostSpec& host_spec(std::uint16_t i) const { return hosts_.at(i); }
  const Link& link(LinkId id) const { return links_.at(id); }

  /// The link plugged into (node, port), if any.
  std::optional<LinkId> link_at(NodeId node, std::uint8_t port) const;

  /// All links touching `node`.
  std::vector<LinkId> links_of(NodeId node) const;

  /// The neighbour reached by leaving `node` through `port`, if connected.
  std::optional<Endpoint> peer(NodeId node, std::uint8_t port) const;

  /// Endpoints of a directed channel: where it starts / ends.
  Endpoint channel_source(Channel c) const;
  Endpoint channel_target(Channel c) const;

  /// The switch a host hangs off (its only link). Throws if unattached.
  Endpoint host_uplink(std::uint16_t host) const;

  /// True when the host has an uplink. Degraded topologies (fault windows
  /// cutting a host off) legitimately carry unattached hosts.
  bool host_attached(std::uint16_t host) const;

  /// True if every node can reach every other node.
  bool connected() const;

  /// Throws std::logic_error describing the first structural problem found
  /// (unattached host, port collision, self-link); no-op when valid.
  void validate() const;

 private:
  std::vector<SwitchSpec> switches_;
  std::vector<HostSpec> hosts_;
  std::vector<Link> links_;
  /// Incidence index: the links touching each node. LinkIds are assigned
  /// monotonically by connect(), so appending keeps every list in ascending
  /// id order — links_of() returns exactly what the old full scan did.
  /// Self-cables appear once, matching the scan semantics.
  std::vector<std::vector<LinkId>> switch_links_;
  std::vector<std::vector<LinkId>> host_links_;

  const std::vector<LinkId>& incident(NodeId n) const;
  std::vector<LinkId>& incident_mutable(NodeId n);
  std::uint8_t port_count(NodeId n) const;
  void check_endpoint(Endpoint e) const;
};

}  // namespace itb::topo
