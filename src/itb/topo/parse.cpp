#include "itb/topo/parse.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

namespace itb::topo {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("topology line " + std::to_string(line) + ": " +
                              what);
}

struct NameTable {
  std::map<std::string, NodeId> ids;

  void add(std::size_t line, const std::string& name, NodeId id) {
    if (!ids.emplace(name, id).second) fail(line, "duplicate name " + name);
  }
  NodeId get(std::size_t line, const std::string& name) const {
    auto it = ids.find(name);
    if (it == ids.end()) fail(line, "unknown node " + name);
    return it->second;
  }
};

/// Split "name:port" into its parts.
std::pair<std::string, std::uint8_t> parse_endpoint(std::size_t line,
                                                    const std::string& token) {
  const auto colon = token.rfind(':');
  if (colon == std::string::npos || colon + 1 >= token.size())
    fail(line, "endpoint must be <name>:<port>, got " + token);
  const std::string name = token.substr(0, colon);
  int port = -1;
  try {
    port = std::stoi(token.substr(colon + 1));
  } catch (const std::exception&) {
    fail(line, "bad port in " + token);
  }
  if (port < 0 || port > 255) fail(line, "port out of range in " + token);
  return {name, static_cast<std::uint8_t>(port)};
}

}  // namespace

Topology parse_topology(const std::string& text) {
  Topology topo;
  NameTable names;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;

  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    if (auto hash = raw.find('#'); hash != std::string::npos)
      raw.resize(hash);
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;  // blank line

    if (keyword == "switch") {
      std::string name;
      int ports = 8;
      if (!(line >> name)) fail(line_no, "switch needs a name");
      line >> ports;
      if (ports < 1 || ports > 127) fail(line_no, "bad port count");
      names.add(line_no, name,
                topo.add_switch(static_cast<std::uint8_t>(ports), name));
    } else if (keyword == "host") {
      std::string name;
      if (!(line >> name)) fail(line_no, "host needs a name");
      names.add(line_no, name, topo.add_host(name));
    } else if (keyword == "link") {
      std::string a, b, kind_str = "san";
      if (!(line >> a >> b)) fail(line_no, "link needs two endpoints");
      line >> kind_str;
      PortKind kind;
      if (kind_str == "san") {
        kind = PortKind::kSan;
      } else if (kind_str == "lan") {
        kind = PortKind::kLan;
      } else {
        fail(line_no, "link kind must be san or lan, got " + kind_str);
      }
      auto [aname, aport] = parse_endpoint(line_no, a);
      auto [bname, bport] = parse_endpoint(line_no, b);
      try {
        topo.connect({names.get(line_no, aname), aport},
                     {names.get(line_no, bname), bport}, kind);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown keyword " + keyword);
    }
    std::string extra;
    if (line >> extra) fail(line_no, "trailing token " + extra);
  }
  return topo;
}

std::string serialize_topology(const Topology& topo) {
  std::ostringstream out;
  auto name_of = [&](NodeId id) -> std::string {
    return id.kind == NodeKind::kSwitch ? topo.switch_spec(id.index).name
                                        : topo.host_spec(id.index).name;
  };
  for (std::uint16_t s = 0; s < topo.switch_count(); ++s)
    out << "switch " << topo.switch_spec(s).name << " "
        << static_cast<int>(topo.switch_spec(s).ports) << "\n";
  for (std::uint16_t h = 0; h < topo.host_count(); ++h)
    out << "host " << topo.host_spec(h).name << "\n";
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const auto& link = topo.link(l);
    out << "link " << name_of(link.a.node) << ":"
        << static_cast<int>(link.a.port) << " " << name_of(link.b.node) << ":"
        << static_cast<int>(link.b.port) << " "
        << (link.kind == PortKind::kSan ? "san" : "lan") << "\n";
  }
  return out.str();
}

}  // namespace itb::topo
