#include "itb/topo/builders.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace itb::topo {

Topology make_paper_testbed(TestbedIds* ids) {
  Topology t;
  t.add_switch(8, "switch1");  // s0: ports 0..3 LAN, 4..7 SAN
  t.add_switch(8, "switch2");  // s1: ports 0..3 LAN, 4..7 SAN
  t.add_host("host1");          // h0, M2L LAN NIC
  t.add_host("in-transit");     // h1
  t.add_host("host2");          // h2, M2M SAN NIC

  // Host links. host1 is the only LAN attachment; the in-transit host and
  // host2 sit on SAN ports so the Fig. 8 UD and UD+ITB paths cross an equal
  // number of LAN ports (exactly one: host1's entry) — the paper requires
  // both paths to traverse the same kinds of ports.
  t.attach_host(0, 0, 0, PortKind::kLan);  // host1      -> s0 port 0 (LAN)
  t.attach_host(1, 0, 4, PortKind::kSan);  // in-transit -> s0 port 4 (SAN)
  t.attach_host(2, 1, 4, PortKind::kSan);  // host2      -> s1 port 4 (SAN)

  // Two inter-switch trunks plus a loopback cable on switch 2, which lets an
  // up*/down* route revisit switch 2 ("a loop in switch 2") to equalise the
  // switch-traversal count with the ITB route.
  t.connect_switches(0, 5, 1, 5, PortKind::kSan);             // trunk A
  t.connect_switches(0, 6, 1, 6, PortKind::kSan);             // trunk B
  t.connect({switch_id(1), 7}, {switch_id(1), 3}, PortKind::kSan);  // loop

  if (ids) *ids = TestbedIds{};
  return t;
}

Topology make_fig1_network() {
  Topology t;
  for (int i = 0; i < 8; ++i) t.add_switch(8);
  for (std::uint16_t i = 0; i < 8; ++i) {
    t.add_host("host@" + std::to_string(i));
  }
  // Trunks chosen so the breadth-first spanning tree rooted at switch 0
  // yields depths 0:{0} 1:{1,2} 2:{3,4,5,6} 3:{7}, making the minimal path
  // 4 -> 6 -> 1 a down->up transition at switch 6 (forbidden by up*/down*)
  // while the shortest legal route 4 -> 2 -> 0 -> 1 is one hop longer.
  const std::pair<int, int> trunks[] = {
      {0, 1}, {0, 2}, {1, 3}, {1, 6}, {2, 4}, {2, 5}, {4, 6}, {3, 7}, {5, 7},
  };
  std::vector<std::uint8_t> next_port(8, 0);
  for (auto [a, b] : trunks) {
    t.connect_switches(static_cast<std::uint16_t>(a), next_port[a]++,
                       static_cast<std::uint16_t>(b), next_port[b]++,
                       PortKind::kSan);
  }
  for (std::uint16_t i = 0; i < 8; ++i) {
    t.attach_host(i, i, next_port[i]++, PortKind::kLan);
  }
  return t;
}

Topology make_random_irregular(const IrregularSpec& spec, sim::Rng& rng) {
  if (spec.hosts_per_switch >= spec.ports)
    throw std::invalid_argument("no ports left for trunks");
  Topology t;
  for (std::uint16_t s = 0; s < spec.switches; ++s) t.add_switch(spec.ports);
  std::vector<std::uint8_t> next_port(spec.switches, 0);

  // Hosts first: `hosts_per_switch` per switch on the low ports.
  for (std::uint16_t s = 0; s < spec.switches; ++s) {
    for (std::uint8_t h = 0; h < spec.hosts_per_switch; ++h) {
      auto id = t.add_host();
      t.attach_host(id.index, s, next_port[s]++, spec.host_link_kind);
    }
  }

  // A random spanning tree guarantees connectivity: attach each switch i>0
  // to a uniformly chosen earlier switch with free ports. The candidate is
  // picked by a counting scan (draw an index among the valid switches, then
  // walk to it) rather than by materialising a candidate vector — same RNG
  // draws, same choices, no per-switch allocation, so large fabrics build
  // without changing any seeded topology.
  auto has_free = [&](std::uint16_t s) { return next_port[s] < spec.ports; };
  for (std::uint16_t s = 1; s < spec.switches; ++s) {
    std::size_t candidates = 0;
    for (std::uint16_t p = 0; p < s; ++p)
      if (has_free(p)) ++candidates;
    if (candidates == 0)
      throw std::invalid_argument("not enough trunk ports for connectivity");
    std::uint64_t want = rng.next_below(candidates);
    std::uint16_t pick = 0;
    for (std::uint16_t p = 0; p < s; ++p) {
      if (!has_free(p)) continue;
      if (want == 0) { pick = p; break; }
      --want;
    }
    t.connect_switches(s, next_port[s]++, pick, next_port[pick]++,
                       spec.trunk_kind);
  }

  // Fill remaining ports with random extra trunks (the "irregular" part).
  // `open` holds one entry per still-free port; next_port[] stays the
  // per-switch cursor of the next free port number. A per-switch tally of
  // open entries lets the partner pick draw against the valid-partner count
  // directly and walk to the chosen one — identical RNG draws and trunk
  // choices to the old materialised-vector version, but no allocation per
  // edge, which is what keeps multi-hundred-switch COWs cheap to generate.
  std::vector<std::uint16_t> open;
  open.reserve(static_cast<std::size_t>(spec.switches) * spec.ports);
  std::vector<std::uint32_t> open_count(spec.switches, 0);
  for (std::uint16_t s = 0; s < spec.switches; ++s)
    for (std::uint8_t p = next_port[s]; p < spec.ports; ++p) {
      open.push_back(s);
      ++open_count[s];
    }

  while (open.size() >= 2) {
    const auto i = rng.next_below(open.size());
    std::uint16_t a = open[i];
    open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
    --open_count[a];
    // Pick a partner on a different switch; stop when only one switch has
    // free ports left (those ports simply stay unused).
    const std::size_t partners = open.size() - open_count[a];
    if (partners == 0) break;
    std::uint64_t want = rng.next_below(partners);
    std::size_t j = 0;
    for (;; ++j) {
      if (open[j] == a) continue;
      if (want == 0) break;
      --want;
    }
    std::uint16_t b = open[j];
    open.erase(open.begin() + static_cast<std::ptrdiff_t>(j));
    --open_count[b];
    t.connect_switches(a, next_port[a]++, b, next_port[b]++, spec.trunk_kind);
  }
  return t;
}

Topology make_random_regular(const RegularSpec& spec, sim::Rng& rng) {
  const std::size_t n = spec.switches;
  if (n < 2)
    throw std::invalid_argument("regular graph needs >= 2 switches");
  if (spec.degree == 0)
    throw std::invalid_argument("regular graph needs degree >= 1");
  const std::size_t stub_count = n * spec.degree;
  if (stub_count % 2 != 0)
    throw std::invalid_argument(
        "switches * degree must be even (every cable has two ends)");
  if (static_cast<std::size_t>(spec.degree) + spec.hosts_per_switch > 255)
    throw std::invalid_argument(
        "degree + hosts_per_switch exceeds the 255-port switch budget");
  if (n * spec.hosts_per_switch > Topology::kMaxNodesPerKind)
    throw std::invalid_argument(
        "switches * hosts_per_switch overflows the 16-bit host id space");

  // Configuration model: `degree` stubs per switch, shuffled and paired in
  // order. A draw is rejected when any pair is a self-cable or the paired
  // switch graph is disconnected; both get rarer as the fabric grows, so a
  // handful of redraws suffices for any reasonable spec.
  std::vector<std::uint16_t> stubs(stub_count);
  std::vector<std::uint16_t> dsu(n);
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::size_t k = 0;
    for (std::uint16_t s = 0; s < n; ++s)
      for (std::uint8_t d = 0; d < spec.degree; ++d) stubs[k++] = s;
    for (std::size_t i = stub_count - 1; i > 0; --i) {
      const auto j = rng.next_below(i + 1);
      std::swap(stubs[i], stubs[j]);
    }

    bool ok = true;
    for (std::size_t i = 0; ok && i < stub_count; i += 2)
      if (stubs[i] == stubs[i + 1]) ok = false;  // self-cable: redraw
    if (!ok) continue;

    // Union-find connectivity check on the pairing before building.
    for (std::uint16_t s = 0; s < n; ++s) dsu[s] = s;
    auto find = [&](std::uint16_t x) {
      while (dsu[x] != x) x = dsu[x] = dsu[dsu[x]];
      return x;
    };
    std::size_t components = n;
    for (std::size_t i = 0; i < stub_count; i += 2) {
      const auto ra = find(stubs[i]);
      const auto rb = find(stubs[i + 1]);
      if (ra != rb) {
        dsu[ra] = rb;
        --components;
      }
    }
    if (components != 1) continue;  // disconnected: redraw

    Topology t;
    const auto ports =
        static_cast<std::uint8_t>(spec.degree + spec.hosts_per_switch);
    for (std::uint16_t s = 0; s < n; ++s) t.add_switch(ports);
    std::vector<std::uint8_t> next_port(n, 0);
    for (std::uint16_t s = 0; s < n; ++s)
      for (std::uint8_t h = 0; h < spec.hosts_per_switch; ++h) {
        auto id = t.add_host();
        t.attach_host(id.index, s, next_port[s]++, spec.host_link_kind);
      }
    for (std::size_t i = 0; i < stub_count; i += 2) {
      const auto a = stubs[i];
      const auto b = stubs[i + 1];
      t.connect_switches(a, next_port[a]++, b, next_port[b]++,
                         spec.trunk_kind);
    }
    return t;
  }
  throw std::runtime_error(
      "make_random_regular: no connected self-cable-free pairing after 64 "
      "draws (degenerate switches/degree combination)");
}

Topology make_fat_tree(std::uint8_t k, PortKind host_link_kind,
                       PortKind trunk_kind) {
  if (k < 2 || k % 2 != 0)
    throw std::invalid_argument("fat tree needs an even k >= 2");
  const std::size_t half = k / 2;
  const std::size_t cores = half * half;
  const std::size_t hosts =
      static_cast<std::size_t>(k) * k * k / 4;  // k pods * k/2 edges * k/2
  if (hosts > Topology::kMaxNodesPerKind)
    throw std::invalid_argument(
        "fat tree k^3/4 hosts overflow the 16-bit host id space");

  Topology t;
  // Cores first: the default up*/down* spanning-tree root (switch 0) lands
  // on a core switch, which is where a fat tree wants its root.
  for (std::size_t c = 0; c < cores; ++c)
    t.add_switch(k, "core" + std::to_string(c));
  const auto agg = [&](std::size_t pod, std::size_t j) {
    return static_cast<std::uint16_t>(cores + pod * k + j);
  };
  const auto edge = [&](std::size_t pod, std::size_t e) {
    return static_cast<std::uint16_t>(cores + pod * k + half + e);
  };
  for (std::size_t pod = 0; pod < k; ++pod) {
    for (std::size_t j = 0; j < half; ++j)
      t.add_switch(k, "agg" + std::to_string(pod) + "." + std::to_string(j));
    for (std::size_t e = 0; e < half; ++e)
      t.add_switch(k, "edge" + std::to_string(pod) + "." + std::to_string(e));
  }

  // Pod fabric: edge(p,e) uplink port half+j <-> agg(p,j) downlink port e.
  for (std::size_t pod = 0; pod < k; ++pod)
    for (std::size_t e = 0; e < half; ++e)
      for (std::size_t j = 0; j < half; ++j)
        t.connect_switches(edge(pod, e), static_cast<std::uint8_t>(half + j),
                           agg(pod, j), static_cast<std::uint8_t>(e),
                           trunk_kind);
  // Core fabric: agg(p,j) uplink port half+u <-> core j*half+u port p.
  for (std::size_t pod = 0; pod < k; ++pod)
    for (std::size_t j = 0; j < half; ++j)
      for (std::size_t u = 0; u < half; ++u)
        t.connect_switches(agg(pod, j), static_cast<std::uint8_t>(half + u),
                           static_cast<std::uint16_t>(j * half + u),
                           static_cast<std::uint8_t>(pod), trunk_kind);
  // Hosts on the edge low ports, numbered pod-major so host / switch
  // locality coincide.
  for (std::size_t pod = 0; pod < k; ++pod)
    for (std::size_t e = 0; e < half; ++e)
      for (std::size_t h = 0; h < half; ++h) {
        auto id = t.add_host();
        t.attach_host(id.index, edge(pod, e), static_cast<std::uint8_t>(h),
                      host_link_kind);
      }
  return t;
}

Topology make_clos(std::uint16_t spine, std::uint16_t leaf,
                   std::uint8_t hosts_per_leaf, PortKind host_link_kind,
                   PortKind trunk_kind) {
  if (spine == 0 || leaf == 0 || hosts_per_leaf == 0)
    throw std::invalid_argument("clos needs spine, leaf and hosts_per_leaf");
  if (leaf > 255)
    throw std::invalid_argument(
        "clos: a spine needs one port per leaf (255-port budget)");
  if (static_cast<std::size_t>(spine) + hosts_per_leaf > 255)
    throw std::invalid_argument(
        "clos: a leaf needs spine + hosts_per_leaf ports (255-port budget)");
  if (static_cast<std::size_t>(spine) + leaf > Topology::kMaxNodesPerKind)
    throw std::invalid_argument(
        "clos: switch count overflows the 16-bit id space");
  if (static_cast<std::size_t>(leaf) * hosts_per_leaf >
      Topology::kMaxNodesPerKind)
    throw std::invalid_argument(
        "clos: host count overflows the 16-bit host id space");

  Topology t;
  // Spines first so the default spanning-tree root is a spine.
  for (std::uint16_t s = 0; s < spine; ++s)
    t.add_switch(static_cast<std::uint8_t>(leaf), "spine" + std::to_string(s));
  for (std::uint16_t l = 0; l < leaf; ++l)
    t.add_switch(static_cast<std::uint8_t>(spine + hosts_per_leaf),
                 "leaf" + std::to_string(l));
  for (std::uint16_t l = 0; l < leaf; ++l)
    for (std::uint16_t s = 0; s < spine; ++s)
      t.connect_switches(static_cast<std::uint16_t>(spine + l),
                         static_cast<std::uint8_t>(s), s,
                         static_cast<std::uint8_t>(l), trunk_kind);
  for (std::uint16_t l = 0; l < leaf; ++l)
    for (std::uint8_t h = 0; h < hosts_per_leaf; ++h) {
      auto id = t.add_host();
      t.attach_host(id.index, static_cast<std::uint16_t>(spine + l),
                    static_cast<std::uint8_t>(spine + h), host_link_kind);
    }
  return t;
}

Topology make_ring(std::uint16_t switches, std::uint8_t hosts_per_switch) {
  if (switches < 3) throw std::invalid_argument("a ring needs >= 3 switches");
  Topology t;
  for (std::uint16_t s = 0; s < switches; ++s) t.add_switch(8);
  std::vector<std::uint8_t> next_port(switches, 0);
  for (std::uint16_t s = 0; s < switches; ++s) {
    const auto n = static_cast<std::uint16_t>((s + 1) % switches);
    t.connect_switches(s, next_port[s]++, n, next_port[n]++, PortKind::kSan);
  }
  for (std::uint16_t s = 0; s < switches; ++s)
    for (std::uint8_t h = 0; h < hosts_per_switch; ++h) {
      auto id = t.add_host();
      t.attach_host(id.index, s, next_port[s]++, PortKind::kLan);
    }
  return t;
}

Topology make_mesh(std::uint16_t rows, std::uint16_t cols,
                   std::uint8_t hosts_per_switch, std::uint8_t ports) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("empty mesh");
  if (4 + hosts_per_switch > ports)
    throw std::invalid_argument("mesh needs 4 trunk ports plus host ports");
  Topology t;
  const auto at = [cols](std::uint16_t r, std::uint16_t c) {
    return static_cast<std::uint16_t>(r * cols + c);
  };
  for (std::uint16_t s = 0; s < rows * cols; ++s) t.add_switch(ports);
  std::vector<std::uint8_t> next_port(static_cast<std::size_t>(rows) * cols, 0);
  for (std::uint16_t r = 0; r < rows; ++r)
    for (std::uint16_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        const auto a = at(r, c), b = at(r, c + 1);
        t.connect_switches(a, next_port[a]++, b, next_port[b]++, PortKind::kSan);
      }
      if (r + 1 < rows) {
        const auto a = at(r, c), b = at(r + 1, c);
        t.connect_switches(a, next_port[a]++, b, next_port[b]++, PortKind::kSan);
      }
    }
  for (std::uint16_t s = 0; s < rows * cols; ++s)
    for (std::uint8_t h = 0; h < hosts_per_switch; ++h) {
      auto id = t.add_host();
      t.attach_host(id.index, s, next_port[s]++, PortKind::kLan);
    }
  return t;
}

Topology make_star(std::uint16_t leaves, std::uint8_t hosts_per_switch) {
  if (leaves == 0) throw std::invalid_argument("star needs leaves");
  if (hosts_per_switch + 1 > 8)
    throw std::invalid_argument("too many hosts per leaf switch");
  Topology t;
  t.add_switch(std::max<std::uint8_t>(8, static_cast<std::uint8_t>(
                                             std::min<int>(leaves, 250))),
               "core");
  for (std::uint16_t l = 0; l < leaves; ++l) t.add_switch(8);
  std::vector<std::uint8_t> next_port(1u + leaves, 0);
  for (std::uint16_t l = 0; l < leaves; ++l) {
    const auto leaf = static_cast<std::uint16_t>(1 + l);
    t.connect_switches(0, next_port[0]++, leaf, next_port[leaf]++,
                       PortKind::kSan);
  }
  for (std::uint16_t l = 0; l < leaves; ++l) {
    const auto leaf = static_cast<std::uint16_t>(1 + l);
    for (std::uint8_t h = 0; h < hosts_per_switch; ++h) {
      auto id = t.add_host();
      t.attach_host(id.index, leaf, next_port[leaf]++, PortKind::kLan);
    }
  }
  return t;
}

Topology make_linear(std::uint16_t switches, std::uint8_t hosts_per_switch) {
  Topology t;
  for (std::uint16_t s = 0; s < switches; ++s) t.add_switch(8);
  std::vector<std::uint8_t> next_port(switches, 0);
  for (std::uint16_t s = 0; s + 1 < switches; ++s) {
    t.connect_switches(s, next_port[s]++, s + 1, next_port[s + 1]++,
                       PortKind::kSan);
  }
  for (std::uint16_t s = 0; s < switches; ++s) {
    for (std::uint8_t h = 0; h < hosts_per_switch; ++h) {
      auto id = t.add_host();
      t.attach_host(id.index, s, next_port[s]++, PortKind::kLan);
    }
  }
  return t;
}

}  // namespace itb::topo
