#include "itb/topo/builders.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace itb::topo {

Topology make_paper_testbed(TestbedIds* ids) {
  Topology t;
  t.add_switch(8, "switch1");  // s0: ports 0..3 LAN, 4..7 SAN
  t.add_switch(8, "switch2");  // s1: ports 0..3 LAN, 4..7 SAN
  t.add_host("host1");          // h0, M2L LAN NIC
  t.add_host("in-transit");     // h1
  t.add_host("host2");          // h2, M2M SAN NIC

  // Host links. host1 is the only LAN attachment; the in-transit host and
  // host2 sit on SAN ports so the Fig. 8 UD and UD+ITB paths cross an equal
  // number of LAN ports (exactly one: host1's entry) — the paper requires
  // both paths to traverse the same kinds of ports.
  t.attach_host(0, 0, 0, PortKind::kLan);  // host1      -> s0 port 0 (LAN)
  t.attach_host(1, 0, 4, PortKind::kSan);  // in-transit -> s0 port 4 (SAN)
  t.attach_host(2, 1, 4, PortKind::kSan);  // host2      -> s1 port 4 (SAN)

  // Two inter-switch trunks plus a loopback cable on switch 2, which lets an
  // up*/down* route revisit switch 2 ("a loop in switch 2") to equalise the
  // switch-traversal count with the ITB route.
  t.connect_switches(0, 5, 1, 5, PortKind::kSan);             // trunk A
  t.connect_switches(0, 6, 1, 6, PortKind::kSan);             // trunk B
  t.connect({switch_id(1), 7}, {switch_id(1), 3}, PortKind::kSan);  // loop

  if (ids) *ids = TestbedIds{};
  return t;
}

Topology make_fig1_network() {
  Topology t;
  for (int i = 0; i < 8; ++i) t.add_switch(8);
  for (std::uint16_t i = 0; i < 8; ++i) {
    t.add_host("host@" + std::to_string(i));
  }
  // Trunks chosen so the breadth-first spanning tree rooted at switch 0
  // yields depths 0:{0} 1:{1,2} 2:{3,4,5,6} 3:{7}, making the minimal path
  // 4 -> 6 -> 1 a down->up transition at switch 6 (forbidden by up*/down*)
  // while the shortest legal route 4 -> 2 -> 0 -> 1 is one hop longer.
  const std::pair<int, int> trunks[] = {
      {0, 1}, {0, 2}, {1, 3}, {1, 6}, {2, 4}, {2, 5}, {4, 6}, {3, 7}, {5, 7},
  };
  std::vector<std::uint8_t> next_port(8, 0);
  for (auto [a, b] : trunks) {
    t.connect_switches(static_cast<std::uint16_t>(a), next_port[a]++,
                       static_cast<std::uint16_t>(b), next_port[b]++,
                       PortKind::kSan);
  }
  for (std::uint16_t i = 0; i < 8; ++i) {
    t.attach_host(i, i, next_port[i]++, PortKind::kLan);
  }
  return t;
}

Topology make_random_irregular(const IrregularSpec& spec, sim::Rng& rng) {
  if (spec.hosts_per_switch >= spec.ports)
    throw std::invalid_argument("no ports left for trunks");
  Topology t;
  for (std::uint16_t s = 0; s < spec.switches; ++s) t.add_switch(spec.ports);
  std::vector<std::uint8_t> next_port(spec.switches, 0);

  // Hosts first: `hosts_per_switch` per switch on the low ports.
  for (std::uint16_t s = 0; s < spec.switches; ++s) {
    for (std::uint8_t h = 0; h < spec.hosts_per_switch; ++h) {
      auto id = t.add_host();
      t.attach_host(id.index, s, next_port[s]++, spec.host_link_kind);
    }
  }

  // A random spanning tree guarantees connectivity: attach each switch i>0
  // to a uniformly chosen earlier switch with free ports.
  auto has_free = [&](std::uint16_t s) { return next_port[s] < spec.ports; };
  for (std::uint16_t s = 1; s < spec.switches; ++s) {
    std::vector<std::uint16_t> candidates;
    for (std::uint16_t p = 0; p < s; ++p)
      if (has_free(p)) candidates.push_back(p);
    if (candidates.empty())
      throw std::invalid_argument("not enough trunk ports for connectivity");
    auto pick = candidates[rng.next_below(candidates.size())];
    t.connect_switches(s, next_port[s]++, pick, next_port[pick]++,
                       spec.trunk_kind);
  }

  // Fill remaining ports with random extra trunks (the "irregular" part).
  // `open` holds one entry per still-free port; next_port[] stays the
  // per-switch cursor of the next free port number.
  std::vector<std::uint16_t> open;
  for (std::uint16_t s = 0; s < spec.switches; ++s)
    for (std::uint8_t p = next_port[s]; p < spec.ports; ++p) open.push_back(s);

  while (open.size() >= 2) {
    const auto i = rng.next_below(open.size());
    std::uint16_t a = open[i];
    open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
    // Pick a partner on a different switch; stop when only one switch has
    // free ports left (those ports simply stay unused).
    std::vector<std::size_t> partners;
    for (std::size_t j = 0; j < open.size(); ++j)
      if (open[j] != a) partners.push_back(j);
    if (partners.empty()) break;
    const auto j = partners[rng.next_below(partners.size())];
    std::uint16_t b = open[j];
    open.erase(open.begin() + static_cast<std::ptrdiff_t>(j));
    t.connect_switches(a, next_port[a]++, b, next_port[b]++, spec.trunk_kind);
  }
  return t;
}

Topology make_ring(std::uint16_t switches, std::uint8_t hosts_per_switch) {
  if (switches < 3) throw std::invalid_argument("a ring needs >= 3 switches");
  Topology t;
  for (std::uint16_t s = 0; s < switches; ++s) t.add_switch(8);
  std::vector<std::uint8_t> next_port(switches, 0);
  for (std::uint16_t s = 0; s < switches; ++s) {
    const auto n = static_cast<std::uint16_t>((s + 1) % switches);
    t.connect_switches(s, next_port[s]++, n, next_port[n]++, PortKind::kSan);
  }
  for (std::uint16_t s = 0; s < switches; ++s)
    for (std::uint8_t h = 0; h < hosts_per_switch; ++h) {
      auto id = t.add_host();
      t.attach_host(id.index, s, next_port[s]++, PortKind::kLan);
    }
  return t;
}

Topology make_mesh(std::uint16_t rows, std::uint16_t cols,
                   std::uint8_t hosts_per_switch, std::uint8_t ports) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("empty mesh");
  if (4 + hosts_per_switch > ports)
    throw std::invalid_argument("mesh needs 4 trunk ports plus host ports");
  Topology t;
  const auto at = [cols](std::uint16_t r, std::uint16_t c) {
    return static_cast<std::uint16_t>(r * cols + c);
  };
  for (std::uint16_t s = 0; s < rows * cols; ++s) t.add_switch(ports);
  std::vector<std::uint8_t> next_port(static_cast<std::size_t>(rows) * cols, 0);
  for (std::uint16_t r = 0; r < rows; ++r)
    for (std::uint16_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        const auto a = at(r, c), b = at(r, c + 1);
        t.connect_switches(a, next_port[a]++, b, next_port[b]++, PortKind::kSan);
      }
      if (r + 1 < rows) {
        const auto a = at(r, c), b = at(r + 1, c);
        t.connect_switches(a, next_port[a]++, b, next_port[b]++, PortKind::kSan);
      }
    }
  for (std::uint16_t s = 0; s < rows * cols; ++s)
    for (std::uint8_t h = 0; h < hosts_per_switch; ++h) {
      auto id = t.add_host();
      t.attach_host(id.index, s, next_port[s]++, PortKind::kLan);
    }
  return t;
}

Topology make_star(std::uint16_t leaves, std::uint8_t hosts_per_switch) {
  if (leaves == 0) throw std::invalid_argument("star needs leaves");
  if (hosts_per_switch + 1 > 8)
    throw std::invalid_argument("too many hosts per leaf switch");
  Topology t;
  t.add_switch(std::max<std::uint8_t>(8, static_cast<std::uint8_t>(
                                             std::min<int>(leaves, 250))),
               "core");
  for (std::uint16_t l = 0; l < leaves; ++l) t.add_switch(8);
  std::vector<std::uint8_t> next_port(1u + leaves, 0);
  for (std::uint16_t l = 0; l < leaves; ++l) {
    const auto leaf = static_cast<std::uint16_t>(1 + l);
    t.connect_switches(0, next_port[0]++, leaf, next_port[leaf]++,
                       PortKind::kSan);
  }
  for (std::uint16_t l = 0; l < leaves; ++l) {
    const auto leaf = static_cast<std::uint16_t>(1 + l);
    for (std::uint8_t h = 0; h < hosts_per_switch; ++h) {
      auto id = t.add_host();
      t.attach_host(id.index, leaf, next_port[leaf]++, PortKind::kLan);
    }
  }
  return t;
}

Topology make_linear(std::uint16_t switches, std::uint8_t hosts_per_switch) {
  Topology t;
  for (std::uint16_t s = 0; s < switches; ++s) t.add_switch(8);
  std::vector<std::uint8_t> next_port(switches, 0);
  for (std::uint16_t s = 0; s + 1 < switches; ++s) {
    t.connect_switches(s, next_port[s]++, s + 1, next_port[s + 1]++,
                       PortKind::kSan);
  }
  for (std::uint16_t s = 0; s < switches; ++s) {
    for (std::uint8_t h = 0; h < hosts_per_switch; ++h) {
      auto id = t.add_host();
      t.attach_host(id.index, s, next_port[s]++, PortKind::kLan);
    }
  }
  return t;
}

}  // namespace itb::topo
