// Canonical topologies used across tests, examples and benches.
#pragma once

#include <cstdint>

#include "itb/sim/rng.hpp"
#include "itb/topo/topology.hpp"

namespace itb::topo {

/// The paper's evaluation testbed (Fig. 6): two M2FM-SW8 switches (8 ports:
/// ports 0..3 are LAN, 4..7 are SAN, matching the "4 LAN + 4 SAN" product)
/// and three hosts:
///   host 0 ("host 1")          — LAN NIC on switch 0
///   host 1 ("in-transit host") — LAN NIC on switch 0
///   host 2 ("host 2")          — SAN NIC on switch 1
/// Switches are joined by two inter-switch cables (one LAN, one SAN) so the
/// Fig. 8 methodology can build a 5-switch-traversal up*/down* path with a
/// loop through switch 1 crossing the same port kinds as the ITB path.
struct TestbedIds {
  std::uint16_t host1 = 0;
  std::uint16_t in_transit = 1;
  std::uint16_t host2 = 2;
  std::uint16_t switch1 = 0;
  std::uint16_t switch2 = 1;
};

Topology make_paper_testbed(TestbedIds* ids = nullptr);

/// The Fig. 1 example: 8 switches (0..7) wired so that the minimal path
/// 4 -> 6 -> 1 is forbidden by up*/down* (it needs an up after a down at
/// switch 6) but becomes legal with one ITB at a host on switch 6. One host
/// hangs off every switch so ITBs are available anywhere.
Topology make_fig1_network();

/// Parameters for random irregular COW topologies, following the methodology
/// of the simulation papers this work builds on ([2,3]): N switches, each
/// with `ports` ports, `hosts_per_switch` hosts on each switch, remaining
/// ports wired randomly subject to connectivity.
struct IrregularSpec {
  std::uint16_t switches = 16;
  std::uint8_t ports = 8;
  std::uint8_t hosts_per_switch = 4;
  /// Port kind used for host links and for switch-switch links.
  PortKind host_link_kind = PortKind::kLan;
  PortKind trunk_kind = PortKind::kSan;
};

Topology make_random_irregular(const IrregularSpec& spec, sim::Rng& rng);

/// A random `degree`-regular switch graph: every switch gets exactly
/// `degree` trunk cables (pairing/configuration model; parallel trunks
/// between two switches are legal Myrinet, self-cables are rejected) plus
/// `hosts_per_switch` hosts. Deterministic given the Rng state; the
/// generator redraws until the switch graph is connected and throws
/// std::runtime_error if that fails 64 times (degenerate parameters).
/// Throws std::invalid_argument when switches * degree is odd, the port
/// budget (degree + hosts_per_switch <= 255) is blown, or a 16-bit id
/// space would overflow.
struct RegularSpec {
  std::uint16_t switches = 64;
  std::uint8_t degree = 4;
  std::uint8_t hosts_per_switch = 4;
  PortKind host_link_kind = PortKind::kLan;
  PortKind trunk_kind = PortKind::kSan;
};

Topology make_random_regular(const RegularSpec& spec, sim::Rng& rng);

/// A k-ary fat tree (Clos-over-pods, the thousand-host datacenter shape):
/// (k/2)^2 core switches, k pods of k/2 aggregation + k/2 edge switches,
/// k/2 hosts per edge switch — k^3/4 hosts total on k-port switches
/// (k = 4 -> 16 hosts, k = 8 -> 128, k = 16 -> 1024). Core switches come
/// first in the switch numbering so the default spanning-tree root is a
/// core. Deterministic (no randomness). Throws std::invalid_argument when
/// k is odd, < 2, or the host count would overflow the 16-bit id space.
Topology make_fat_tree(std::uint8_t k, PortKind host_link_kind = PortKind::kLan,
                       PortKind trunk_kind = PortKind::kSan);

/// A two-level leaf-spine Clos: every leaf wired to every spine,
/// `hosts_per_leaf` hosts per leaf. Spines come first in the switch
/// numbering so the default spanning-tree root is a spine. Deterministic.
/// Throws std::invalid_argument on port-budget violations (a spine needs
/// `leaf` ports, a leaf needs `spine + hosts_per_leaf`, both <= 255) or a
/// 16-bit id-space overflow.
Topology make_clos(std::uint16_t spine, std::uint16_t leaf,
                   std::uint8_t hosts_per_leaf,
                   PortKind host_link_kind = PortKind::kLan,
                   PortKind trunk_kind = PortKind::kSan);

/// A chain of `switches` switches with one host on each end plus
/// `hosts_per_switch` hosts everywhere; handy for unit tests.
Topology make_linear(std::uint16_t switches, std::uint8_t hosts_per_switch = 1);

/// A ring of `switches` switches. Rings are the smallest topologies whose
/// cycles force up*/down* to forbid some minimal paths, so they make good
/// ITB showcases.
Topology make_ring(std::uint16_t switches, std::uint8_t hosts_per_switch = 1);

/// A 2D mesh of rows x cols switches (COWs wired along machine-room rows).
/// Port budget: 4 mesh neighbours + hosts_per_switch must fit in `ports`.
Topology make_mesh(std::uint16_t rows, std::uint16_t cols,
                   std::uint8_t hosts_per_switch = 2, std::uint8_t ports = 8);

/// A star: `leaves` edge switches around one core switch, hosts on the
/// leaves only. The worst case for root congestion when the core is not
/// the spanning-tree root.
Topology make_star(std::uint16_t leaves, std::uint8_t hosts_per_switch = 2);

}  // namespace itb::topo
