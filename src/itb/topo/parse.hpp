// Textual topology description.
//
// A COW wiring list a user can keep next to the machines:
//
//   # comment
//   switch sw0 8           # name, port count (default 8)
//   host   nodeA
//   link   sw0:0 sw1:3 san # endpoints as <name>:<port>; kind san|lan
//   link   nodeA:0 sw0:1 lan
//
// Hosts and switches are numbered in declaration order, which is the id
// space used by the rest of the library (GM host ids, switch ids).
#pragma once

#include <iosfwd>
#include <string>

#include "itb/topo/topology.hpp"

namespace itb::topo {

/// Parse a description. Throws std::invalid_argument with a line-numbered
/// message on any syntax or wiring error.
Topology parse_topology(const std::string& text);

/// Serialize a topology in the same format (stable round trip).
std::string serialize_topology(const Topology& topo);

}  // namespace itb::topo
