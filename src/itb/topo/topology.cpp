#include "itb/topo/topology.hpp"

#include <queue>
#include <set>
#include <stdexcept>

namespace itb::topo {

const char* to_string(NodeKind k) {
  return k == NodeKind::kSwitch ? "switch" : "host";
}

const char* to_string(PortKind k) { return k == PortKind::kSan ? "SAN" : "LAN"; }

std::string to_string(NodeId id) {
  return std::string(id.kind == NodeKind::kSwitch ? "s" : "h") +
         std::to_string(id.index);
}

NodeId Topology::add_switch(std::uint8_t ports, std::string name) {
  if (ports == 0) throw std::invalid_argument("switch needs at least one port");
  if (switches_.size() >= kMaxNodesPerKind)
    throw std::invalid_argument(
        "switch id space exhausted (65535 max): the mapper and route tables "
        "index switches with 16 bits");
  auto idx = static_cast<std::uint16_t>(switches_.size());
  if (name.empty()) name = "sw" + std::to_string(idx);
  switches_.push_back(SwitchSpec{ports, std::move(name)});
  switch_links_.emplace_back();
  return switch_id(idx);
}

NodeId Topology::add_host(std::string name) {
  if (hosts_.size() >= kMaxNodesPerKind)
    throw std::invalid_argument(
        "host id space exhausted (65535 max): NIC tables and the GM header "
        "address hosts with 16 bits");
  auto idx = static_cast<std::uint16_t>(hosts_.size());
  if (name.empty()) name = "host" + std::to_string(idx);
  hosts_.push_back(HostSpec{std::move(name)});
  host_links_.emplace_back();
  return host_id(idx);
}

std::uint8_t Topology::port_count(NodeId n) const {
  if (n.kind == NodeKind::kSwitch) return switches_.at(n.index).ports;
  return 1;  // A NIC exposes a single network port.
}

void Topology::check_endpoint(Endpoint e) const {
  if (e.node.kind == NodeKind::kSwitch && e.node.index >= switches_.size())
    throw std::invalid_argument("unknown switch " + to_string(e.node));
  if (e.node.kind == NodeKind::kHost && e.node.index >= hosts_.size())
    throw std::invalid_argument("unknown host " + to_string(e.node));
  if (e.port >= port_count(e.node))
    throw std::invalid_argument("port " + std::to_string(e.port) +
                                " out of range on " + to_string(e.node));
  if (link_at(e.node, e.port))
    throw std::invalid_argument("port already connected on " + to_string(e.node) +
                                " port " + std::to_string(e.port));
}

LinkId Topology::connect(Endpoint a, Endpoint b, PortKind kind) {
  check_endpoint(a);
  check_endpoint(b);
  // Switch self-cables (two ports of the same switch wired together) are
  // legal Myrinet configurations and the Fig. 8 methodology depends on one
  // ("the up*/down* path requires a loop in switch 2"). Hosts have a single
  // port, so a host can never self-connect.
  if (a == b)
    throw std::invalid_argument("port wired to itself on " + to_string(a.node));
  if (a.node == b.node && a.node.kind == NodeKind::kHost)
    throw std::invalid_argument("self-link on " + to_string(a.node));
  if (a.node.kind == NodeKind::kHost && b.node.kind == NodeKind::kHost)
    throw std::invalid_argument("host-to-host cable (" + to_string(a.node) +
                                " - " + to_string(b.node) +
                                "): NICs attach to switches");
  links_.push_back(Link{a, b, kind});
  const auto id = static_cast<LinkId>(links_.size() - 1);
  incident_mutable(a.node).push_back(id);
  if (!(b.node == a.node)) incident_mutable(b.node).push_back(id);
  return id;
}

LinkId Topology::connect_switches(std::uint16_t s1, std::uint8_t p1,
                                  std::uint16_t s2, std::uint8_t p2,
                                  PortKind kind) {
  return connect({switch_id(s1), p1}, {switch_id(s2), p2}, kind);
}

LinkId Topology::attach_host(std::uint16_t h, std::uint16_t s, std::uint8_t p,
                             PortKind kind) {
  return connect({host_id(h), 0}, {switch_id(s), p}, kind);
}

std::vector<LinkId>& Topology::incident_mutable(NodeId n) {
  // Only called by connect() after check_endpoint validated the node.
  auto& lists = n.kind == NodeKind::kSwitch ? switch_links_ : host_links_;
  return lists[n.index];
}

const std::vector<LinkId>& Topology::incident(NodeId n) const {
  static const std::vector<LinkId> kNone;
  const auto& lists = n.kind == NodeKind::kSwitch ? switch_links_ : host_links_;
  if (n.index >= lists.size()) return kNone;
  return lists[n.index];
}

std::optional<LinkId> Topology::link_at(NodeId node, std::uint8_t port) const {
  for (LinkId i : incident(node)) {
    const Link& l = links_[i];
    if ((l.a.node == node && l.a.port == port) ||
        (l.b.node == node && l.b.port == port))
      return i;
  }
  return std::nullopt;
}

std::vector<LinkId> Topology::links_of(NodeId node) const {
  return incident(node);
}

std::optional<Endpoint> Topology::peer(NodeId node, std::uint8_t port) const {
  auto lid = link_at(node, port);
  if (!lid) return std::nullopt;
  const Link& l = links_[*lid];
  return (l.a.node == node && l.a.port == port) ? l.b : l.a;
}

Endpoint Topology::channel_source(Channel c) const {
  const Link& l = links_.at(c.link);
  return c.forward ? l.a : l.b;
}

Endpoint Topology::channel_target(Channel c) const {
  const Link& l = links_.at(c.link);
  return c.forward ? l.b : l.a;
}

Endpoint Topology::host_uplink(std::uint16_t host) const {
  auto p = peer(host_id(host), 0);
  if (!p) throw std::logic_error("host " + std::to_string(host) + " unattached");
  return *p;
}

bool Topology::host_attached(std::uint16_t host) const {
  return peer(host_id(host), 0).has_value();
}

bool Topology::connected() const {
  const std::size_t total = switches_.size() + hosts_.size();
  if (total == 0) return true;
  std::set<NodeId> seen;
  std::queue<NodeId> frontier;
  NodeId start = switches_.empty() ? host_id(0) : switch_id(0);
  frontier.push(start);
  seen.insert(start);
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop();
    for (LinkId lid : links_of(n)) {
      const Link& l = links_[lid];
      NodeId other = (l.a.node == n) ? l.b.node : l.a.node;
      if (seen.insert(other).second) frontier.push(other);
    }
  }
  return seen.size() == total;
}

void Topology::validate() const {
  for (std::uint16_t h = 0; h < hosts_.size(); ++h) {
    if (!link_at(host_id(h), 0))
      throw std::logic_error("host " + std::to_string(h) + " is unattached");
    if (peer(host_id(h), 0)->node.kind != NodeKind::kSwitch)
      throw std::logic_error("host " + std::to_string(h) +
                             " must attach to a switch");
  }
  if (!connected()) throw std::logic_error("topology is not connected");
}

}  // namespace itb::topo
