// Myrinet packet formats (paper Fig. 3).
//
// Original packet (Fig. 3a):   [ Path | Type | Payload | CRC ]
// ITB packet      (Fig. 3b):   [ Path | ITB | Length | Path | Type | Payload | CRC ]
//
// `Path` is a sequence of route bytes, one per switch traversal; each switch
// consumes the leading byte to pick its output port. When a packet reaches a
// NIC the leading two bytes name its type; an in-transit NIC recognises the
// ITB tag, reads the remaining-header `Length`, strips the tag, and
// re-injects the rest of the packet, whose own leading bytes are the next
// source route. Several ITB stages can be chained (more than one ITB per
// path, §1).
//
// Wire encoding choices (ours; the real byte values are Myricom-assigned):
//   route byte  = 0x80 | output_port      (high bit marks a route byte)
//   type        = 2 bytes, big-endian     (PacketType below)
//   ITB tag     = type kItb + 1 byte Length (remaining header bytes)
//   CRC         = CRC-8 over Type..Payload (route bytes excluded so hops
//                 that consume route bytes don't have to recompute it)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace itb::packet {

using Bytes = std::vector<std::uint8_t>;

/// Leading 2-byte packet types understood by a NIC (§4: "a normal GM packet,
/// a mapping packet, a packet with an IP packet in its payload or an ITB
/// packet"). New types are assigned by Myricom on request; kItb is the one
/// this paper requested.
enum class PacketType : std::uint16_t {
  kGm = 0x0001,
  kMapping = 0x0002,
  kIp = 0x0003,
  kItb = 0x0004,
};

const char* to_string(PacketType t);

/// A source route: output ports, in traversal order.
using Route = std::vector<std::uint8_t>;

inline constexpr std::uint8_t kRouteByteFlag = 0x80;

std::uint8_t encode_route_byte(std::uint8_t port);
bool is_route_byte(std::uint8_t b);
std::uint8_t decode_route_byte(std::uint8_t b);

/// Hard ceiling on bytes a single ITB `Length` field can describe.
inline constexpr std::size_t kMaxHeaderBytes = 255;

/// Build an original-format packet (Fig. 3a).
Bytes build_packet(const Route& route, PacketType type,
                   std::span<const std::uint8_t> payload);

/// Build an ITB-format packet (Fig. 3b) whose path is split into
/// `segments` (>= 1). With one segment this degenerates to build_packet.
/// Throws std::invalid_argument if a Length field would overflow.
Bytes build_itb_packet(const std::vector<Route>& segments, PacketType type,
                       std::span<const std::uint8_t> payload);

/// What a parser found at the head of a buffer that reached a NIC
/// (i.e. after all route bytes of the current segment were consumed).
struct ParsedHead {
  PacketType type;
  /// For kItb: the Length field (remaining header bytes after the tag).
  std::uint8_t itb_remaining_header = 0;
  /// Offset of the first payload byte (for terminal packets).
  std::size_t payload_offset = 0;
  /// Payload length in bytes (terminal packets; excludes trailing CRC).
  std::size_t payload_length = 0;
};

/// Parse the head of a received buffer. Returns nullopt on malformed input
/// (leading route bytes, short buffer, unknown type).
std::optional<ParsedHead> parse_head(std::span<const std::uint8_t> buffer);

/// Decode just the 2-byte type field — all the Early Recv handler can do
/// with the 4-byte snapshot the LANai hands it (§4). Returns nullopt for
/// route bytes, short buffers or unknown type values.
std::optional<PacketType> peek_type(std::span<const std::uint8_t> buffer);

/// Strip the leading ITB tag (2-byte type + Length byte) from a received
/// in-transit packet, yielding the bytes to re-inject. Throws
/// std::invalid_argument if the buffer does not start with an ITB tag.
Bytes strip_itb_stage(std::span<const std::uint8_t> buffer);

/// Consume the leading route byte (what a switch does). Returns the output
/// port and erases the byte from `buffer`. Throws if no route byte leads.
std::uint8_t consume_route_byte(Bytes& buffer);

/// Verify the trailing CRC-8 of a terminal packet (route bytes must already
/// be consumed).
bool verify_crc(std::span<const std::uint8_t> buffer);

/// Number of route bytes at the head of the buffer.
std::size_t leading_route_bytes(std::span<const std::uint8_t> buffer);

/// Human-readable dump for traces and tests.
std::string describe(std::span<const std::uint8_t> buffer);

}  // namespace itb::packet
