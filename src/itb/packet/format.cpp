#include "itb/packet/format.hpp"

#include <stdexcept>

#include "itb/packet/crc.hpp"

namespace itb::packet {

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kGm: return "GM";
    case PacketType::kMapping: return "MAP";
    case PacketType::kIp: return "IP";
    case PacketType::kItb: return "ITB";
  }
  return "?";
}

std::uint8_t encode_route_byte(std::uint8_t port) {
  if (port >= kRouteByteFlag)
    throw std::invalid_argument("port too large for a route byte");
  return static_cast<std::uint8_t>(kRouteByteFlag | port);
}

bool is_route_byte(std::uint8_t b) { return (b & kRouteByteFlag) != 0; }

std::uint8_t decode_route_byte(std::uint8_t b) {
  return static_cast<std::uint8_t>(b & ~kRouteByteFlag);
}

namespace {

void append_type(Bytes& out, PacketType type) {
  const auto v = static_cast<std::uint16_t>(type);
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void append_route(Bytes& out, const Route& route) {
  for (auto port : route) out.push_back(encode_route_byte(port));
}

std::optional<PacketType> read_type(std::span<const std::uint8_t> b) {
  if (b.size() < 2) return std::nullopt;
  const auto v = static_cast<std::uint16_t>((b[0] << 8) | b[1]);
  switch (static_cast<PacketType>(v)) {
    case PacketType::kGm:
    case PacketType::kMapping:
    case PacketType::kIp:
    case PacketType::kItb:
      return static_cast<PacketType>(v);
  }
  return std::nullopt;
}

}  // namespace

Bytes build_packet(const Route& route, PacketType type,
                   std::span<const std::uint8_t> payload) {
  Bytes out;
  out.reserve(route.size() + 2 + payload.size() + 1);
  append_route(out, route);
  const std::size_t body_start = out.size();
  append_type(out, type);
  out.insert(out.end(), payload.begin(), payload.end());
  out.push_back(crc8(std::span(out).subspan(body_start)));
  return out;
}

Bytes build_itb_packet(const std::vector<Route>& segments, PacketType type,
                       std::span<const std::uint8_t> payload) {
  if (segments.empty()) throw std::invalid_argument("no route segments");
  if (segments.size() == 1) return build_packet(segments[0], type, payload);

  // Remaining-header length seen by the ITB tag before segment i: all later
  // segments' route bytes, the tags between them, and the final 2-byte type.
  // Computed back-to-front.
  std::vector<std::size_t> remaining(segments.size(), 0);
  std::size_t acc = 2;  // final Type field
  for (std::size_t i = segments.size(); i-- > 1;) {
    acc += segments[i].size();
    remaining[i] = acc;
    acc += 3;  // the ITB tag (2) + Length (1) that precedes segment i
  }
  for (std::size_t i = 1; i < segments.size(); ++i) {
    if (remaining[i] > kMaxHeaderBytes)
      throw std::invalid_argument("ITB Length field overflow");
  }

  Bytes out;
  append_route(out, segments[0]);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    append_type(out, PacketType::kItb);
    out.push_back(static_cast<std::uint8_t>(remaining[i]));
    append_route(out, segments[i]);
  }
  append_type(out, type);
  out.insert(out.end(), payload.begin(), payload.end());
  // CRC over the terminal portion (Type + payload) so that consuming route
  // bytes and stripping ITB stages never invalidates it.
  const std::size_t body_start = out.size() - payload.size() - 2;
  out.push_back(crc8(std::span(out).subspan(body_start)));
  return out;
}

std::optional<PacketType> peek_type(std::span<const std::uint8_t> buffer) {
  if (buffer.size() < 2 || is_route_byte(buffer[0])) return std::nullopt;
  return read_type(buffer);
}

std::optional<ParsedHead> parse_head(std::span<const std::uint8_t> buffer) {
  if (buffer.size() < 3) return std::nullopt;
  if (is_route_byte(buffer[0])) return std::nullopt;
  auto type = read_type(buffer);
  if (!type) return std::nullopt;
  ParsedHead head;
  head.type = *type;
  if (*type == PacketType::kItb) {
    head.itb_remaining_header = buffer[2];
    if (buffer.size() < 3u + head.itb_remaining_header + 1u) return std::nullopt;
    return head;
  }
  head.payload_offset = 2;
  head.payload_length = buffer.size() - 3;  // minus type and trailing CRC
  return head;
}

Bytes strip_itb_stage(std::span<const std::uint8_t> buffer) {
  auto head = parse_head(buffer);
  if (!head || head->type != PacketType::kItb)
    throw std::invalid_argument("buffer does not start with an ITB tag");
  return Bytes(buffer.begin() + 3, buffer.end());
}

std::uint8_t consume_route_byte(Bytes& buffer) {
  if (buffer.empty() || !is_route_byte(buffer[0]))
    throw std::invalid_argument("no leading route byte");
  const std::uint8_t port = decode_route_byte(buffer[0]);
  buffer.erase(buffer.begin());
  return port;
}

bool verify_crc(std::span<const std::uint8_t> buffer) {
  auto head = parse_head(buffer);
  if (!head || head->type == PacketType::kItb) return false;
  return crc8(buffer.subspan(0, buffer.size() - 1)) == buffer.back();
}

std::size_t leading_route_bytes(std::span<const std::uint8_t> buffer) {
  std::size_t n = 0;
  while (n < buffer.size() && is_route_byte(buffer[n])) ++n;
  return n;
}

std::string describe(std::span<const std::uint8_t> buffer) {
  std::string out = "[";
  std::size_t i = 0;
  while (i < buffer.size()) {
    if (is_route_byte(buffer[i])) {
      out += "p" + std::to_string(decode_route_byte(buffer[i])) + " ";
      ++i;
      continue;
    }
    auto head = parse_head(buffer.subspan(i));
    if (!head) {
      out += "<malformed>";
      break;
    }
    if (head->type == PacketType::kItb) {
      out += "ITB(len=" + std::to_string(head->itb_remaining_header) + ") ";
      i += 3;
      continue;
    }
    out += std::string(to_string(head->type)) + " payload=" +
           std::to_string(head->payload_length) + "B";
    break;
  }
  out += "]";
  return out;
}

}  // namespace itb::packet
