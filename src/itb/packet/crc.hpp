// CRC routines for packet integrity.
//
// Myrinet packets carry an 8-bit CRC appended by the sending interface and
// checked (and stripped/recomputed) at each hop; GM additionally protects
// payloads end-to-end. We implement CRC-8/ATM (poly 0x07) for the trailing
// header byte and CRC-32 (IEEE, reflected) for payload protection.
#pragma once

#include <cstdint>
#include <span>

namespace itb::packet {

/// CRC-8, polynomial x^8+x^2+x+1 (0x07), init 0, no reflection.
std::uint8_t crc8(std::span<const std::uint8_t> data);

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF).
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental CRC-32 for streaming use by DMA models.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data);
  void update(std::uint8_t byte);
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }
  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace itb::packet
