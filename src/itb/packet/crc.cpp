#include "itb/packet/crc.hpp"

#include <array>

namespace itb::packet {
namespace {

constexpr std::array<std::uint8_t, 256> make_crc8_table() {
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    std::uint8_t c = static_cast<std::uint8_t>(i);
    for (int bit = 0; bit < 8; ++bit)
      c = static_cast<std::uint8_t>((c & 0x80u) ? (c << 1) ^ 0x07u : c << 1);
    table[static_cast<std::size_t>(i)] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kCrc8Table = make_crc8_table();
constexpr auto kCrc32Table = make_crc32_table();

}  // namespace

std::uint8_t crc8(std::span<const std::uint8_t> data) {
  std::uint8_t c = 0;
  for (auto b : data) c = kCrc8Table[static_cast<std::size_t>(c ^ b)];
  return c;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

void Crc32::update(std::span<const std::uint8_t> data) {
  for (auto b : data) update(b);
}

void Crc32::update(std::uint8_t byte) {
  state_ = kCrc32Table[(state_ ^ byte) & 0xFFu] ^ (state_ >> 8);
}

}  // namespace itb::packet
